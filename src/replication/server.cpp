#include "replication/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>

#include "net/protocol.hpp"
#include "persist/file.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"
#include "replication/log.hpp"
#include "replication/wire.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace larp::replication {

namespace {

using Clock = std::chrono::steady_clock;
using detail::read_available;
using detail::send_all;
using detail::wait_readable;

std::uint64_t unix_millis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplicationServer::ReplicationServer(serve::PredictionEngine& engine,
                                     ReplicationServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (engine_.config().role != serve::EngineRole::kLeader) {
    throw InvalidArgument("ReplicationServer: engine must be a leader");
  }
  if (engine_.config().durability.data_dir.empty()) {
    throw InvalidArgument(
        "ReplicationServer: leader engine needs durability (replication "
        "ships its WAL)");
  }
  if (config_.max_batch_bytes == 0 || config_.snapshot_chunk_bytes == 0 ||
      config_.max_batch_bytes > net::kMaxFrameBytes / 2 ||
      config_.snapshot_chunk_bytes > net::kMaxFrameBytes / 2) {
    throw InvalidArgument("ReplicationServer: batch/chunk size out of range");
  }
}

ReplicationServer::~ReplicationServer() { stop(); }

void ReplicationServer::start() {
  if (running_.load()) return;
  listener_ = net::listen_tcp(config_.host, config_.port);
  port_ = net::local_port(listener_);
  running_.store(true);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  LARP_LOG_INFO("repl") << "ReplicationServer: listening on " << config_.host
                        << ":" << port_;
}

void ReplicationServer::stop() {
  if (!running_.exchange(false)) return;
  if (acceptor_.joinable()) acceptor_.join();
  listener_.reset();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    // Poll loops notice running_ within one timeout tick.
    if (session->thread.joinable()) session->thread.join();
  }
  engine_.set_replication_floor({});
}

void ReplicationServer::acceptor_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int rc = wait_readable(listener_.get(), 100);
    if (rc < 0) break;
    if (rc == 0) continue;
    net::Fd conn = net::accept_conn(listener_);
    if (!conn.valid()) continue;
    auto session = std::make_unique<Session>();
    session->fd = std::move(conn);
    Session* raw = session.get();
    {
      std::lock_guard lock(sessions_mutex_);
      // Reap finished sessions so a long-lived leader does not accumulate
      // dead threads.
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
      sessions_.push_back(std::move(session));
    }
    sessions_total_.fetch_add(1, std::memory_order_relaxed);
    raw->thread = std::thread([this, raw] { session_loop(*raw); });
  }
}

void ReplicationServer::session_loop(Session& session) {
  try {
    serve_follower(session);
  } catch (const std::exception& e) {
    LARP_LOG_WARN("repl") << "follower session ended: " << e.what();
  }
  {
    std::lock_guard lock(sessions_mutex_);
    session.has_acked = false;
    refresh_retain_floor_locked();
  }
  session.fd.reset();
  session.done.store(true);
}

void ReplicationServer::refresh_retain_floor_locked() {
  const std::size_t shards = engine_.config().shards;
  std::vector<std::uint64_t> floor;
  for (const auto& session : sessions_) {
    if (!session->has_acked) continue;
    if (floor.empty()) {
      floor = session->acked;
    } else {
      for (std::size_t s = 0; s < shards && s < session->acked.size(); ++s) {
        floor[s] = std::min(floor[s], session->acked[s]);
      }
    }
  }
  engine_.set_replication_floor(floor);
}

bool ReplicationServer::ship_snapshot(Session& session,
                                      std::uint64_t hello_id) {
  const std::uint64_t epoch = engine_.snapshot();
  const auto& dir = engine_.config().durability.data_dir;
  std::filesystem::path path;
  for (const auto& info : persist::list_snapshots(dir)) {
    if (info.epoch == epoch) path = info.path;
  }
  if (path.empty()) return false;
  const std::vector<std::byte> contents = persist::read_file(path);

  persist::io::Writer body;
  std::vector<std::byte> out;
  const std::size_t chunk_bytes = config_.snapshot_chunk_bytes;
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(chunk_bytes, contents.size() - offset);
    const bool last = offset + n == contents.size();
    net::encode_repl_snapshot_chunk(
        body, hello_id, epoch, contents.size(), offset,
        std::span<const std::byte>(contents.data() + offset, n), last);
    out.clear();
    net::append_frame(out, body.bytes());
    if (!send_all(session.fd.get(), out)) return false;
    offset += n;
  } while (offset < contents.size());
  snapshots_shipped_.fetch_add(1, std::memory_order_relaxed);
  LARP_LOG_INFO("repl") << "shipped bootstrap snapshot epoch " << epoch << " ("
                        << contents.size() << " bytes)";
  return true;
}

void ReplicationServer::serve_follower(Session& session) {
  const int fd = session.fd.get();
  const std::size_t shards = engine_.config().shards;
  const auto& data_dir = engine_.config().durability.data_dir;
  net::FrameDecoder decoder;
  persist::io::Writer body;
  std::vector<std::byte> out;
  std::uint64_t next_id = 1;

  // Hold WAL pruning entirely while this follower is handshaking: until its
  // real positions are known, any frame could still be needed.
  {
    std::lock_guard lock(sessions_mutex_);
    session.acked.assign(shards, 0);
    session.has_acked = true;
    refresh_retain_floor_locked();
  }

  // Blocks until a complete frame of the expected type arrives (or the
  // server stops / the peer misbehaves).
  const auto read_frame =
      [&](net::MsgType expect) -> std::optional<std::vector<std::byte>> {
    for (;;) {
      std::span<const std::byte> frame;
      const auto status = decoder.next(frame);
      if (status == net::FrameDecoder::Status::kCorrupt) return std::nullopt;
      if (status == net::FrameDecoder::Status::kFrame) {
        persist::io::Reader r(frame);
        if (net::decode_header(r).type != expect) return std::nullopt;
        return std::vector<std::byte>(frame.begin(), frame.end());
      }
      if (!running_.load(std::memory_order_relaxed)) return std::nullopt;
      const int rc = wait_readable(fd, 100);
      if (rc < 0) return std::nullopt;
      if (rc == 1 && !read_available(fd, decoder)) return std::nullopt;
    }
  };

  const auto parse_hello =
      [](const std::vector<std::byte>& frame) -> net::ReplHello {
    persist::io::Reader r(frame);
    (void)net::decode_header(r);
    return net::decode_repl_hello(r);
  };

  // A hello position table is resumable when it names every shard, is not
  // ahead of the leader, and every position still sits inside the retained
  // log (at or past the oldest segment — or exactly at the log's start).
  const auto resumable = [&](const std::vector<std::uint64_t>& positions) {
    if (positions.size() != shards) return false;
    if (!covers(engine_.wal_positions(), positions)) {
      throw persist::CorruptData(
          "repl: follower is ahead of the leader — its directory belongs to "
          "a different history");
    }
    for (std::size_t s = 0; s < shards; ++s) {
      const auto segments =
          persist::list_wal_segments(data_dir, static_cast<std::uint32_t>(s));
      if (!segments.empty() && positions[s] < segments.front().start_seq) {
        return false;
      }
    }
    return true;
  };

  auto hello_frame = read_frame(net::MsgType::kReplHello);
  if (!hello_frame) return;
  net::ReplHello hello = parse_hello(*hello_frame);
  if (hello.proto_version != net::kReplProtocolVersion) {
    body.clear();
    net::encode_error(body, 0, net::ErrorCode::kBadRequest,
                      "unsupported replication protocol version");
    out.clear();
    net::append_frame(out, body.bytes());
    (void)send_all(fd, out);
    return;
  }

  if (!resumable(hello.positions)) {
    persist::io::Reader r(*hello_frame);
    const std::uint64_t hello_id = net::decode_header(r).id;
    if (!ship_snapshot(session, hello_id)) return;
    hello_frame = read_frame(net::MsgType::kReplHello);
    if (!hello_frame) return;
    hello = parse_hello(*hello_frame);
    if (!resumable(hello.positions)) {
      throw persist::CorruptData(
          "repl: follower positions invalid even after bootstrap");
    }
  }

  {
    std::lock_guard lock(sessions_mutex_);
    session.acked = hello.positions;
    refresh_retain_floor_locked();
  }
  LARP_LOG_INFO("repl") << "follower resuming at " << total_frames(hello.positions)
                        << " total frames";

  std::vector<WalTailer> tailers;
  tailers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    tailers.emplace_back(data_dir, static_cast<std::uint32_t>(s),
                         hello.positions[s]);
  }

  std::vector<TailedFrame> tailed;
  std::vector<net::ReplFrame> repl_frames;
  auto last_heartbeat = Clock::time_point{};  // forces an immediate one
  while (running_.load(std::memory_order_relaxed)) {
    // Drain acks that have arrived.
    for (;;) {
      std::span<const std::byte> frame;
      const auto status = decoder.next(frame);
      if (status == net::FrameDecoder::Status::kCorrupt) return;
      if (status == net::FrameDecoder::Status::kNeedMore) break;
      persist::io::Reader r(frame);
      if (net::decode_header(r).type != net::MsgType::kReplAck) return;
      const auto acked = net::decode_repl_ack(r);
      std::lock_guard lock(sessions_mutex_);
      session.acked = acked;
      refresh_retain_floor_locked();
    }

    bool shipped = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const TailStatus status =
          tailers[s].poll(tailed, config_.max_batch_bytes);
      if (status == TailStatus::kUpToDate) continue;
      if (status != TailStatus::kFrames) {
        // kNeedsBootstrap: the retain floor was not enough (e.g. the floor
        // only engaged after a prune already ran).  kCorrupt: the log is
        // damaged.  Either way this session cannot continue; the follower
        // reconnects and the handshake sorts it out.
        LARP_LOG_WARN("repl") << "shard " << s << " tail status "
                              << static_cast<int>(status)
                              << "; dropping follower session";
        return;
      }
      repl_frames.clear();
      repl_frames.reserve(tailed.size());
      for (const auto& f : tailed) repl_frames.push_back({f.seq, f.payload});
      body.clear();
      net::encode_repl_frames(body, next_id++,
                              static_cast<std::uint32_t>(s), repl_frames);
      out.clear();
      net::append_frame(out, body.bytes());
      if (!send_all(fd, out)) return;
      frames_shipped_.fetch_add(repl_frames.size(),
                                std::memory_order_relaxed);
      shipped = true;
    }

    const auto now = Clock::now();
    if (now - last_heartbeat >= config_.heartbeat_interval) {
      const auto positions = engine_.wal_positions();
      body.clear();
      net::encode_repl_heartbeat(body, next_id++, unix_millis(), positions);
      out.clear();
      net::append_frame(out, body.bytes());
      if (!send_all(fd, out)) return;
      heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
      last_heartbeat = now;
    }

    if (!shipped) {
      const int rc = wait_readable(
          fd, static_cast<int>(config_.poll_interval.count()));
      if (rc < 0) return;
      if (rc == 1 && !read_available(fd, decoder)) return;
    }
  }
}

ReplicationServer::Stats ReplicationServer::stats() const {
  Stats stats;
  {
    std::lock_guard lock(sessions_mutex_);
    for (const auto& session : sessions_) {
      if (!session->done.load()) ++stats.followers_connected;
    }
  }
  stats.sessions_total = sessions_total_.load(std::memory_order_relaxed);
  stats.frames_shipped = frames_shipped_.load(std::memory_order_relaxed);
  stats.snapshots_shipped = snapshots_shipped_.load(std::memory_order_relaxed);
  stats.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace larp::replication
