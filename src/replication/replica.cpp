#include "replication/replica.hpp"

#include <algorithm>
#include <cstdio>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "persist/file.hpp"
#include "persist/snapshot.hpp"
#include "replication/log.hpp"
#include "replication/wire.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace larp::replication {

namespace {

using Clock = std::chrono::steady_clock;

std::string snapshot_filename(std::uint64_t epoch) {
  char name[48];
  std::snprintf(name, sizeof(name), "snapshot-%020llu.snap",
                static_cast<unsigned long long>(epoch));
  return name;
}

}  // namespace

Replica::Replica(predictors::PredictorPool pool_prototype, ReplicaConfig config)
    : pool_prototype_(std::move(pool_prototype)), config_(std::move(config)) {
  if (config_.data_dir.empty()) {
    throw InvalidArgument("Replica: data_dir is required (replicated frames "
                          "are WAL-logged locally before applying)");
  }
  config_.engine.role = serve::EngineRole::kFollower;
  config_.engine.durability.data_dir = config_.data_dir;
}

Replica::~Replica() { stop(); }

void Replica::start() {
  if (running_.exchange(true)) return;
  // A follower that already has durable state serves reads immediately —
  // before the leader is even reachable (it reports stale until the stream
  // catches up, which is exactly what max_staleness is for).
  if (!engine_ && !persist::list_snapshots(config_.data_dir).empty()) {
    adopt_engine();
  }
  thread_ = std::thread([this] { run(); });
}

void Replica::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  connected_.store(false);
}

serve::PredictionEngine* Replica::wait_until_ready(
    std::chrono::milliseconds timeout) {
  std::unique_lock lock(ready_mutex_);
  ready_cv_.wait_for(lock, timeout, [&] {
    return engine_ptr_.load(std::memory_order_acquire) != nullptr ||
           failed_.load() || !running_.load();
  });
  return engine_ptr_.load(std::memory_order_acquire);
}

Replica::Stats Replica::stats() const {
  Stats stats;
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  stats.bootstraps = bootstraps_.load(std::memory_order_relaxed);
  stats.connected = connected_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  return stats;
}

void Replica::adopt_engine() {
  auto engine = serve::PredictionEngine::restore(pool_prototype_.clone(),
                                                 config_.data_dir,
                                                 config_.engine);
  {
    std::lock_guard lock(ready_mutex_);
    engine_ = std::move(engine);
    engine_ptr_.store(engine_.get(), std::memory_order_release);
  }
  ready_cv_.notify_all();
}

void Replica::run() {
  auto backoff = config_.reconnect_backoff;
  bool first_attempt = true;
  while (running_.load(std::memory_order_relaxed)) {
    if (!first_attempt) reconnects_.fetch_add(1, std::memory_order_relaxed);
    first_attempt = false;
    try {
      stream_once();
      backoff = config_.reconnect_backoff;  // clean disconnect: fast retry
    } catch (const std::exception& e) {
      if (running_.load(std::memory_order_relaxed)) {
        LARP_LOG_WARN("repl") << "replica stream ended: " << e.what();
      }
    }
    connected_.store(false);
    if (failed_.load() || !running_.load(std::memory_order_relaxed)) break;
    auto remaining = backoff;
    while (running_.load(std::memory_order_relaxed) &&
           remaining > std::chrono::milliseconds::zero()) {
      const auto step = std::min(remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(step);
      remaining -= step;
    }
    backoff = std::min(backoff * 2, config_.max_backoff);
  }
  ready_cv_.notify_all();  // wake wait_until_ready() on failure/stop
}

void Replica::stream_once() {
  net::Fd fd = net::connect_tcp(
      config_.leader_host, config_.leader_port,
      static_cast<std::uint32_t>(config_.connect_timeout.count()));
  detail::make_nonblocking(fd.get());
  connected_.store(true);

  net::FrameDecoder decoder;
  persist::io::Writer body;
  std::vector<std::byte> out;
  std::uint64_t next_id = 1;

  const auto send_frame = [&] {
    out.clear();
    net::append_frame(out, body.bytes());
    if (!detail::send_all(fd.get(), out)) {
      throw net::NetError("repl: send to leader failed");
    }
  };
  const auto send_hello = [&] {
    std::vector<std::uint64_t> positions;
    if (engine_) positions = engine_->wal_positions();
    net::encode_repl_hello(body, next_id++, net::kReplProtocolVersion,
                           positions);
    send_frame();
  };
  send_hello();

  std::vector<std::byte> snapshot_buf;
  std::vector<net::ReplFrame> frames;
  std::vector<serve::ReplicatedFrame> batch;
  auto last_ack = Clock::now();
  bool applied_since_ack = false;

  while (running_.load(std::memory_order_relaxed)) {
    for (;;) {
      std::span<const std::byte> frame;
      const auto status = decoder.next(frame);
      if (status == net::FrameDecoder::Status::kCorrupt) {
        throw net::NetError("repl: corrupt frame from leader");
      }
      if (status == net::FrameDecoder::Status::kNeedMore) break;
      persist::io::Reader r(frame);
      const net::FrameHeader header = net::decode_header(r);
      switch (header.type) {
        case net::MsgType::kReplSnapshotChunk: {
          const net::ReplSnapshotChunk chunk =
              net::decode_repl_snapshot_chunk(r);
          if (engine_) {
            // The engine pointer is already published to callers (the serve
            // front-end holds it), so it cannot be swapped out underneath
            // them.  Unrecoverable in-process: restart the follower.
            failed_.store(true);
            throw net::NetError(
                "repl: leader demands a re-bootstrap but the follower engine "
                "is live — its position predates the leader's retained log; "
                "restart the follower to bootstrap afresh");
          }
          if (chunk.offset != snapshot_buf.size()) {
            throw net::NetError("repl: snapshot chunks out of order");
          }
          if (chunk.offset == 0) {
            snapshot_buf.clear();
            snapshot_buf.reserve(chunk.total_bytes);
          }
          snapshot_buf.insert(snapshot_buf.end(), chunk.data.begin(),
                              chunk.data.end());
          if (chunk.last) {
            if (snapshot_buf.size() != chunk.total_bytes) {
              throw net::NetError("repl: snapshot transfer size mismatch");
            }
            persist::ensure_directory(config_.data_dir);
            persist::publish_file(
                config_.data_dir / snapshot_filename(chunk.epoch),
                snapshot_buf);
            snapshot_buf.clear();
            snapshot_buf.shrink_to_fit();
            // Count the bootstrap BEFORE adopt_engine() publishes the engine:
            // wait_until_ready() returns the instant the pointer lands, and a
            // caller reading stats() right then must already see it.
            bootstraps_.fetch_add(1, std::memory_order_relaxed);
            adopt_engine();
            LARP_LOG_INFO("repl") << "bootstrapped from leader snapshot epoch "
                                  << chunk.epoch;
            send_hello();
          }
          break;
        }
        case net::MsgType::kReplFrames: {
          if (!engine_) {
            throw net::NetError("repl: leader streamed frames before the "
                                "follower was bootstrapped");
          }
          frames.clear();
          const std::uint32_t shard = net::decode_repl_frames(r, frames);
          batch.clear();
          batch.reserve(frames.size());
          for (const auto& f : frames) batch.push_back({f.seq, f.payload});
          engine_->replicate_frames(shard, batch);
          applied_since_ack = true;
          break;
        }
        case net::MsgType::kReplHeartbeat: {
          const net::ReplHeartbeat hb = net::decode_repl_heartbeat(r);
          if (engine_ && covers(engine_->wal_positions(), hb.positions)) {
            engine_->note_caught_up();
          }
          break;
        }
        case net::MsgType::kError: {
          const net::WireError err = net::decode_error(r);
          throw net::NetError("repl: leader refused the stream: " +
                              err.message);
        }
        default:
          throw net::NetError("repl: unexpected frame type from leader");
      }
    }

    const auto now = Clock::now();
    if (engine_ &&
        (applied_since_ack || now - last_ack >= config_.ack_interval)) {
      const auto positions = engine_->wal_positions();
      net::encode_repl_ack(body, next_id++, positions);
      send_frame();
      last_ack = now;
      applied_since_ack = false;
    }

    const int rc = detail::wait_readable(
        fd.get(), static_cast<int>(config_.ack_interval.count()));
    if (rc < 0) throw net::NetError("repl: connection to leader lost");
    if (rc == 1 && !detail::read_available(fd.get(), decoder)) {
      return;  // leader closed cleanly (e.g. its stop()); reconnect
    }
  }
}

}  // namespace larp::replication
