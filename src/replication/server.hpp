// replication::ReplicationServer — the leader side of streaming WAL
// replication.
//
// One acceptor thread listens for follower connections; each follower gets
// its own session thread speaking the masked-CRC32C frame protocol:
//
//   follower                          leader
//   --------                          ------
//   ReplHello{positions}      ->
//                             <-      ReplSnapshotChunk* (only when the
//                                     positions are empty or predate the
//                                     retained log: a fresh snapshot is cut
//                                     and its container bytes shipped)
//   ReplHello{new positions}  ->      (re-sent after a bootstrap restore)
//                             <-      ReplFrames / ReplHeartbeat stream
//   ReplAck{positions}        ->      (applied positions, on a cadence)
//
// Live frames come from WalTailer — the segment files on disk — so shipping
// never takes a shard lock.  Acked positions feed the engine's replication
// retain floor: snapshot() will not prune WAL segments a connected follower
// still needs, and a follower whose position predates the retained log is
// told to bootstrap instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "serve/prediction_engine.hpp"

namespace larp::replication {

struct ReplicationServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  std::uint16_t port = 0;
  /// Heartbeat cadence (leader clock + published positions).
  std::chrono::milliseconds heartbeat_interval{100};
  /// Idle tail-poll cadence: how quickly new commits reach followers.
  std::chrono::milliseconds poll_interval{5};
  /// Per-ReplFrames payload budget (kept well under the 4 MiB frame cap).
  std::size_t max_batch_bytes = 1u << 20;
  /// Per-ReplSnapshotChunk payload size.
  std::size_t snapshot_chunk_bytes = 1u << 20;
};

class ReplicationServer {
 public:
  struct Stats {
    std::size_t followers_connected = 0;  // live sessions right now
    std::size_t sessions_total = 0;       // sessions ever accepted
    std::size_t frames_shipped = 0;       // WAL frames sent
    std::size_t snapshots_shipped = 0;    // bootstrap snapshots sent
    std::size_t heartbeats_sent = 0;
  };

  /// The engine must be a durable leader (role kLeader, data_dir set):
  /// replication ships its WAL.  Throws InvalidArgument otherwise.
  ReplicationServer(serve::PredictionEngine& engine,
                    ReplicationServerConfig config);
  ~ReplicationServer();

  ReplicationServer(const ReplicationServer&) = delete;
  ReplicationServer& operator=(const ReplicationServer&) = delete;

  /// Binds and spawns the acceptor.  Throws NetError when the bind fails.
  void start();
  /// Joins every session and the acceptor.  Idempotent; the destructor
  /// calls it.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Stats stats() const;

 private:
  struct Session {
    net::Fd fd;
    std::thread thread;
    std::atomic<bool> done{false};
    /// This follower's latest acked positions (under sessions_mutex_).
    std::vector<std::uint64_t> acked;
    bool has_acked = false;
  };

  void acceptor_loop();
  void session_loop(Session& session);
  /// Runs one follower session on an open socket; returns on disconnect,
  /// protocol violation, or stop().
  void serve_follower(Session& session);
  /// Cuts a fresh snapshot and ships its container bytes in chunks.
  /// Returns false on a send failure.
  bool ship_snapshot(Session& session, std::uint64_t hello_id);
  /// Recomputes the engine's retain floor from every live session's acks
  /// (called with sessions_mutex_ held).
  void refresh_retain_floor_locked();

  serve::PredictionEngine& engine_;
  ReplicationServerConfig config_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;

  std::atomic<std::size_t> sessions_total_{0};
  std::atomic<std::size_t> frames_shipped_{0};
  std::atomic<std::size_t> snapshots_shipped_{0};
  std::atomic<std::size_t> heartbeats_sent_{0};
};

}  // namespace larp::replication
