// replication::detail — blocking-ish socket helpers the leader sessions and
// the follower client share.  All of them work on non-blocking sockets:
// send_all waits out EAGAIN with poll, read_available drains only what is
// already buffered.  Internal to src/replication.
#pragma once

#include <cstddef>
#include <span>

#include "net/protocol.hpp"

namespace larp::replication::detail {

/// Full-transfer send: EINTR retried, EAGAIN waited out with poll.  Returns
/// false on a hard error or hangup.
[[nodiscard]] bool send_all(int fd, std::span<const std::byte> bytes);

/// Waits up to `timeout_ms` for readability; 1 = readable, 0 = timeout,
/// -1 = hangup/error.
[[nodiscard]] int wait_readable(int fd, int timeout_ms);

/// Drains whatever is currently readable into the decoder without blocking.
/// Returns false on EOF or a hard error.
[[nodiscard]] bool read_available(int fd, net::FrameDecoder& decoder);

/// Puts an already-connected socket into non-blocking mode (the follower
/// client connects blocking, then drives the stream with poll).
void make_nonblocking(int fd);

}  // namespace larp::replication::detail
