// replication::log — the position model replication is built on, plus the
// leader-side segment tailer.
//
// A *position* is, per shard, the next WAL sequence number an engine expects
// (exactly WalWriter::next_seq()).  Positions are directly comparable across
// a leader/follower pair because a follower's state mutates only through
// replicate_frames(): its log is a byte copy of the leader's, so "follower
// position >= leader position" means the follower has applied everything the
// leader had published at that instant.  A position table (one u64 per
// shard) travels in every Hello/Ack/Heartbeat frame.
//
// The WalTailer reads a shard's committed frames straight from the segment
// files the WalWriter appends — no shared state with the writer beyond the
// filesystem, which is the whole point: the replication server never takes a
// shard lock, so shipping frames cannot contend with serving traffic.
// Correctness against a concurrently-appending writer follows from the WAL's
// own recovery rules:
//   * frames are only trusted past a full length+CRC+contiguity check, so a
//     torn tail (partial write in flight, or a crash) reads as "no more
//     frames yet" — the tailer holds its position and re-reads on the next
//     poll, which also makes a leader-side repair_wal() + rewrite at the
//     same offset seamless;
//   * an invalid frame is only *corruption* when a successor segment exists
//     (the contiguity invariant says rotation happens exactly at the end of
//     a segment's valid frames, so damage in the middle of the sequence can
//     never be a tail in progress).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

namespace larp::replication {

/// One tailed WAL frame.  `payload` (the post-seq frame bytes) borrows the
/// tailer's read buffer: valid until the next poll() call.
struct TailedFrame {
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;
};

enum class TailStatus {
  kFrames,          // >= 1 frame delivered
  kUpToDate,        // nothing committed past the position yet
  kNeedsBootstrap,  // the position predates the oldest retained segment
  kCorrupt,         // invalid frame mid-sequence (a successor segment exists)
};

/// Incremental reader over one shard's WAL segment files.  poll() delivers
/// committed frames from the current position onward and advances only past
/// frames that validated completely, so a caller can poll forever against a
/// live writer.
class WalTailer {
 public:
  WalTailer(std::filesystem::path dir, std::uint32_t shard,
            std::uint64_t position);

  /// Reads forward from position(), appending validated frames to `out`
  /// (cleared first) until `max_bytes` of payload have accumulated or the
  /// committed log is exhausted.  On kFrames the position has advanced past
  /// the delivered frames; on every other status it is unchanged.
  TailStatus poll(std::vector<TailedFrame>& out, std::size_t max_bytes);

  /// Next sequence number poll() will deliver.
  [[nodiscard]] std::uint64_t position() const noexcept { return position_; }

 private:
  std::filesystem::path dir_;
  std::uint32_t shard_;
  std::uint64_t position_;
  std::vector<std::byte> contents_;  // current segment bytes (reused)
};

/// True when every shard of `a` is at or past `b` — "a has applied
/// everything b had".  Tables of different sizes never cover each other.
[[nodiscard]] bool covers(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b);

/// The global commit watermark of a position table: total frames committed
/// across all shards.  Monotone under replication (positions only advance),
/// so leader minus follower is a scalar lag gauge in frames.
[[nodiscard]] std::uint64_t total_frames(std::span<const std::uint64_t> p);

}  // namespace larp::replication
