#include "replication/log.hpp"

#include <algorithm>

#include "persist/crc32c.hpp"
#include "persist/file.hpp"
#include "persist/io.hpp"
#include "persist/wal.hpp"

namespace larp::replication {

namespace {

// The WAL segment format (mirrors persist/wal.cpp, which keeps these
// private; the layout itself is pinned by the persist golden-format tests).
constexpr std::uint64_t kWalMagic = 0x314C415750524C41ull;  // "LARPWAL1" LE
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kFrameHeaderBytes = 4 + 4;
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

}  // namespace

WalTailer::WalTailer(std::filesystem::path dir, std::uint32_t shard,
                     std::uint64_t position)
    : dir_(std::move(dir)), shard_(shard), position_(position) {}

TailStatus WalTailer::poll(std::vector<TailedFrame>& out,
                           std::size_t max_bytes) {
  out.clear();
  const auto segments = persist::list_wal_segments(dir_, shard_);
  if (segments.empty()) return TailStatus::kUpToDate;
  if (position_ < segments.front().start_seq) {
    return TailStatus::kNeedsBootstrap;
  }
  // The segment holding position_: the last one starting at or below it.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].start_seq <= position_) idx = i;
  }

  std::size_t delivered_bytes = 0;
  std::uint64_t next = position_;
  for (; idx < segments.size() && delivered_bytes < max_bytes; ++idx) {
    if (segments[idx].start_seq > next) {
      // A gap between segments below the write head is unreachable under
      // the contiguity invariant — trust nothing past it.
      return out.empty() ? TailStatus::kCorrupt : TailStatus::kFrames;
    }
    try {
      contents_ = persist::read_file(segments[idx].path);
    } catch (const persist::IoError&) {
      // Pruned between the directory listing and the read; the next poll
      // re-lists (and reports kNeedsBootstrap if our position went with it).
      break;
    }
    if (contents_.size() < kSegmentHeaderBytes) break;  // header in flight
    persist::io::Reader header(
        std::span<const std::byte>(contents_).first(kSegmentHeaderBytes));
    if (header.u64() != kWalMagic ||
        header.u32() == 0 /* version */ || header.u32() != shard_) {
      return TailStatus::kCorrupt;
    }
    const std::uint64_t start_seq = header.u64();
    if (start_seq != segments[idx].start_seq) return TailStatus::kCorrupt;

    // Walk the frames; deliver the ones at or past the position.
    const std::span<const std::byte> bytes(contents_);
    std::size_t offset = kSegmentHeaderBytes;
    std::uint64_t seq = start_seq;
    bool clean_end = false;
    while (offset < bytes.size()) {
      if (bytes.size() - offset < kFrameHeaderBytes) break;  // torn header
      persist::io::Reader fh(bytes.subspan(offset, kFrameHeaderBytes));
      const std::uint32_t length = fh.u32();
      const std::uint32_t stored_crc = persist::crc32c_unmask(fh.u32());
      if (length < 8 || length > kMaxFrameBytes ||
          length > bytes.size() - offset - kFrameHeaderBytes) {
        break;  // torn or corrupt length
      }
      const auto body = bytes.subspan(offset + kFrameHeaderBytes, length);
      if (persist::crc32c(body) != stored_crc) break;
      persist::io::Reader body_reader(body);
      if (body_reader.u64() != seq) break;  // sequence hole
      if (seq >= next) {
        out.push_back({seq, body.subspan(8)});
        delivered_bytes += body.size() - 8;
        next = seq + 1;
        if (delivered_bytes >= max_bytes) {
          // Budget filled mid-segment; the next poll resumes here (and
          // re-reads this segment — `contents_` is about to be reused).
          position_ = next;
          return TailStatus::kFrames;
        }
      }
      ++seq;
      offset += kFrameHeaderBytes + length;
      clean_end = (offset == bytes.size());
    }
    if (offset == kSegmentHeaderBytes && bytes.size() == kSegmentHeaderBytes) {
      clean_end = true;  // header-only segment, freshly rotated
    }
    next = std::max(next, seq);
    if (!clean_end) {
      // Invalid bytes short of the file's end: a tail still being written
      // (wait and re-poll) — unless a successor segment exists, in which
      // case rotation already happened and this is genuine damage.
      const bool has_successor = idx + 1 < segments.size();
      if (has_successor && segments[idx + 1].start_seq <= seq) {
        continue;  // successor picks up exactly where the valid prefix ends
      }
      if (has_successor) return TailStatus::kCorrupt;
      break;
    }
  }
  if (out.empty()) return TailStatus::kUpToDate;
  position_ = next;
  return TailStatus::kFrames;
}

bool covers(std::span<const std::uint64_t> a,
            std::span<const std::uint64_t> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

std::uint64_t total_frames(std::span<const std::uint64_t> p) {
  std::uint64_t total = 0;
  for (std::uint64_t v : p) total += v;
  return total;
}

}  // namespace larp::replication
