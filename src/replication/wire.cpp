#include "replication/wire.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket.hpp"

namespace larp::replication::detail {

bool send_all(int fd, std::span<const std::byte> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) < 0 && errno != EINTR) return false;
      continue;
    }
    return false;
  }
  return true;
}

int wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return -1;
  if (rc == 0) return 0;
  if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return -1;
  return 1;
}

bool read_available(int fd, net::FrameDecoder& decoder) {
  std::byte buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      decoder.feed(std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw net::NetError(std::string("repl: fcntl(O_NONBLOCK): ") +
                        std::strerror(errno));
  }
}

}  // namespace larp::replication::detail
