#include "selection/knn_selector.hpp"

#include "util/error.hpp"

namespace larp::selection {

KnnSelector::KnnSelector(ml::Pca pca, ml::KnnClassifier classifier)
    : pca_(std::move(pca)), classifier_(std::move(classifier)) {
  if (!pca_.fitted()) throw InvalidArgument("KnnSelector: PCA not fitted");
  if (!classifier_.fitted()) {
    throw InvalidArgument("KnnSelector: classifier not fitted");
  }
}

std::size_t KnnSelector::select(std::span<const double> window) {
  pca_.transform_into(window, reduced_scratch_);
  return classifier_.classify(reduced_scratch_, query_scratch_);
}

void KnnSelector::learn(std::span<const double> window, std::size_t label) {
  // Index growth allocates by nature (the point is appended); the projection
  // still reuses the scratch.
  pca_.transform_into(window, reduced_scratch_);
  classifier_.add(reduced_scratch_, label);
}

void KnnSelector::select_weights_into(std::span<const double> window,
                                      std::size_t pool_size,
                                      std::vector<double>& out) {
  pca_.transform_into(window, reduced_scratch_);
  const auto hits = classifier_.neighbors(reduced_scratch_, query_scratch_);
  out.assign(pool_size, 0.0);
  for (const auto& hit : hits) {
    const std::size_t label = classifier_.label_of(hit.index);
    if (label >= pool_size) {
      throw InvalidArgument("KnnSelector: training label outside the pool");
    }
    out[label] += 1.0;
  }
  const double total = static_cast<double>(hits.size());
  if (total > 0.0) {
    for (double& w : out) w /= total;
  }
}

std::unique_ptr<Selector> KnnSelector::clone() const {
  return std::make_unique<KnnSelector>(*this);
}

}  // namespace larp::selection
