#include "selection/knn_selector.hpp"

#include "util/error.hpp"

namespace larp::selection {

KnnSelector::KnnSelector(ml::Pca pca, ml::KnnClassifier classifier)
    : pca_(std::move(pca)), classifier_(std::move(classifier)) {
  if (!pca_.fitted()) throw InvalidArgument("KnnSelector: PCA not fitted");
  if (!classifier_.fitted()) {
    throw InvalidArgument("KnnSelector: classifier not fitted");
  }
}

std::size_t KnnSelector::select(std::span<const double> window) {
  const auto reduced = pca_.transform(window);
  return classifier_.classify(reduced);
}

void KnnSelector::learn(std::span<const double> window, std::size_t label) {
  classifier_.add(pca_.transform(window), label);
}

std::vector<double> KnnSelector::select_weights(std::span<const double> window,
                                                std::size_t pool_size) {
  const auto reduced = pca_.transform(window);
  const auto hits = classifier_.neighbors(reduced);
  std::vector<double> weights(pool_size, 0.0);
  for (const auto& hit : hits) {
    const std::size_t label = classifier_.label_of(hit.index);
    if (label >= pool_size) {
      throw InvalidArgument("KnnSelector: training label outside the pool");
    }
    weights[label] += 1.0;
  }
  const double total = static_cast<double>(hits.size());
  if (total > 0.0) {
    for (double& w : weights) w /= total;
  }
  return weights;
}

std::unique_ptr<Selector> KnnSelector::clone() const {
  return std::make_unique<KnnSelector>(*this);
}

}  // namespace larp::selection
