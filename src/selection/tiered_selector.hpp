// TieredSelector: the degraded/fast serving tier in front of the primary
// classifier (DESIGN.md §10).
//
// Two tiers, one Selector:
//   * fast    — a constant-time hardware-style selector (tournament /
//               perceptron / global-history) that trains from record()
//               feedback and needs no index;
//   * primary — the trained classifier (k-NN / centroid), absent while the
//               series is still cold or its index is not built.
//
// Every call routes to the ACTIVE tier: the primary the moment it exists
// and reports cost().ready(), the fast tier until then.  Handoff is
// therefore bit-identical to running the primary alone — after promote()
// the tiered selector is a pure pass-through, and the fast tier costs
// nothing (its feedback stops with the record() stream; see
// core::LarPredictor::observe).
#pragma once

#include "selection/selector.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::selection {

/// Which O(1) selector backs the fast tier (None = no tier: the primary
/// serves from the start, exactly the pre-tier behaviour).
enum class FastTier : std::uint8_t {
  None = 0,
  Tournament = 1,
  Perceptron = 2,
  GlobalHistory = 3,
};

/// Tuning for the fast tier (defaults follow the classic branch-predictor
/// shapes: 2-bit counters, 4-deep global history, 64-row pattern table).
struct FastTierConfig {
  unsigned counter_bits = 2;       // tournament + pattern-table counters
  std::size_t history_length = 4;  // global-history winners remembered
  std::size_t table_rows = 64;     // pattern-table rows
  std::size_t min_records = 8;     // feedback steps before cost().ready()
  double perceptron_lr = 0.25;     // perceptron learning rate
  double perceptron_clip = 8.0;    // perceptron weight ceiling
  double error_decay = 0.9;        // recent-error EWMA decay (perceptron)
};

/// Builds the configured O(1) selector.  Throws InvalidArgument for
/// FastTier::None (a tier that does not exist cannot be constructed).
[[nodiscard]] std::unique_ptr<Selector> make_fast_selector(
    FastTier tier, std::size_t pool_size, const FastTierConfig& config = {});

/// Serializes / restores a fast-tier selector polymorphically (a one-byte
/// kind tag plus the selector's own exact state).  Only the three fast
/// selectors are supported; save throws StateError for anything else and
/// load throws persist::CorruptData for an unknown tag.
void save_fast_selector(persist::io::Writer& w, const Selector& selector);
[[nodiscard]] std::unique_ptr<Selector> load_fast_selector(
    persist::io::Reader& r);

class TieredSelector final : public Selector {
 public:
  /// Takes the fast tier (required) and optionally an already-ready primary.
  explicit TieredSelector(std::unique_ptr<Selector> fast,
                          std::unique_ptr<Selector> primary = nullptr);

  /// Installs (or replaces) the primary tier; the handoff happens on the
  /// next call that finds it ready.
  void promote(std::unique_ptr<Selector> primary);

  /// True once calls are served by the primary tier.
  [[nodiscard]] bool serving_primary() const noexcept {
    return primary_ != nullptr && primary_->cost().ready();
  }

  [[nodiscard]] const Selector& fast_tier() const noexcept { return *fast_; }
  [[nodiscard]] Selector& fast_tier() noexcept { return *fast_; }
  [[nodiscard]] const Selector* primary_tier() const noexcept {
    return primary_.get();
  }
  [[nodiscard]] Selector* primary_tier() noexcept { return primary_.get(); }

  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void select_weights_into(std::span<const double> window,
                           std::size_t pool_size,
                           std::vector<double>& out) override;
  void record(std::span<const double> forecasts, double actual) override;
  void learn(std::span<const double> window, std::size_t label) override;
  [[nodiscard]] bool supports_online_learning() const noexcept override;
  [[nodiscard]] SelectorCost cost() const noexcept override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

 private:
  [[nodiscard]] Selector& active() noexcept {
    return serving_primary() ? *primary_ : *fast_;
  }
  [[nodiscard]] const Selector& active() const noexcept {
    return serving_primary() ? *primary_ : *fast_;
  }

  std::unique_ptr<Selector> fast_;
  std::unique_ptr<Selector> primary_;
};

}  // namespace larp::selection
