#include "selection/centroid_selector.hpp"

#include "util/error.hpp"

namespace larp::selection {

CentroidSelector::CentroidSelector(ml::Pca pca,
                                   ml::NearestCentroidClassifier classifier)
    : pca_(std::move(pca)), classifier_(std::move(classifier)) {
  if (!pca_.fitted()) throw InvalidArgument("CentroidSelector: PCA not fitted");
  if (!classifier_.fitted()) {
    throw InvalidArgument("CentroidSelector: classifier not fitted");
  }
}

std::size_t CentroidSelector::select(std::span<const double> window) {
  pca_.transform_into(window, reduced_scratch_);
  return classifier_.classify(reduced_scratch_);
}

void CentroidSelector::learn(std::span<const double> window, std::size_t label) {
  pca_.transform_into(window, reduced_scratch_);
  classifier_.add(reduced_scratch_, label);
}

std::unique_ptr<Selector> CentroidSelector::clone() const {
  return std::make_unique<CentroidSelector>(*this);
}

}  // namespace larp::selection
