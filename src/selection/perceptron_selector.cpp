#include "selection/perceptron_selector.hpp"

#include <algorithm>
#include <cmath>

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::selection {

PerceptronSelector::PerceptronSelector(std::size_t pool_size, Config config)
    : config_(config),
      pool_size_(pool_size),
      weights_(pool_size * kFeatures, 0.0),
      error_ewma_(pool_size, 0.0) {
  if (pool_size == 0) throw InvalidArgument("PerceptronSelector: empty pool");
  if (!(config_.learning_rate > 0.0)) {
    throw InvalidArgument("PerceptronSelector: learning rate must be positive");
  }
  if (!(config_.clip > 0.0)) {
    throw InvalidArgument("PerceptronSelector: clip must be positive");
  }
  if (!(config_.error_decay > 0.0) || config_.error_decay >= 1.0) {
    throw InvalidArgument("PerceptronSelector: error decay must be in (0, 1)");
  }
}

std::string PerceptronSelector::name() const { return "Perceptron"; }

void PerceptronSelector::reset() {
  std::fill(weights_.begin(), weights_.end(), 0.0);
  std::fill(error_ewma_.begin(), error_ewma_.end(), 0.0);
  features_.fill(0.0);
  features_fresh_ = false;
  records_seen_ = 0;
}

double PerceptronSelector::score(std::size_t member) const {
  const double* w = weights_.data() + member * kFeatures;
  double s = 0.0;
  for (std::size_t f = 0; f < kSharedFeatures; ++f) s += w[f] * features_[f];
  return s + w[kSharedFeatures] * error_ewma_[member];
}

std::size_t PerceptronSelector::select(std::span<const double> window) {
  // Window features (normalized units; the window the LarPredictor passes is
  // already z-scored, so no extra normalization layer is needed).  Degenerate
  // windows fall out naturally: an empty window scores every member on bias
  // + error EWMA alone.
  const std::size_t n = window.size();
  if (n != cached_n_) {
    cached_n_ = n;
    cached_inv_n_ = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  }
  const double inv_n = cached_inv_n_;
  // Pairwise accumulators halve the serial add chain over the window.
  double sum0 = 0.0, sum1 = 0.0;
  double sq0 = 0.0, sq1 = 0.0;
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {
    sum0 += window[i];
    sq0 += window[i] * window[i];
    sum1 += window[i + 1];
    sq1 += window[i + 1] * window[i + 1];
  }
  if (i < n) {
    sum0 += window[i];
    sq0 += window[i] * window[i];
  }
  const double sum = sum0 + sum1;
  const double sum_sq = sq0 + sq1;
  const double mean = sum * inv_n;
  // Single-pass variance; the max() guards the tiny negative residue
  // cancellation can leave on near-constant windows.
  const double var = std::max(0.0, sum_sq * inv_n - mean * mean);
  const double last = n > 0 ? window[n - 1] : 0.0;
  // Stack copy of the features: scoring reads these (provably alias-free
  // against the score writes), while the member array persists them for the
  // next record().
  const double fv[kSharedFeatures] = {
      1.0, n > 1 ? window[n - 1] - window[n - 2] : 0.0, mean, var,
      last - mean};
  for (std::size_t f = 0; f < kSharedFeatures; ++f) features_[f] = fv[f];
  features_fresh_ = true;

  // Straight-line dot product per member (kFeatures is a compile-time
  // constant): one contiguous weight row per member, independent chains the
  // CPU overlaps across iterations.
  const double* wp = weights_.data();
  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t p = 0; p < pool_size_; ++p, wp += kFeatures) {
    const double s = wp[0] * fv[0] + wp[1] * fv[1] + wp[2] * fv[2] +
                     wp[3] * fv[3] + wp[4] * fv[4] + wp[5] * error_ewma_[p];
    if (p == 0 || s > best_score) {
      best_score = s;
      best = p;
    }
  }
  return best;
}

void PerceptronSelector::record(std::span<const double> forecasts,
                                double actual) {
  if (forecasts.size() != pool_size_) {
    throw InvalidArgument(
        "PerceptronSelector: forecast count does not match pool size");
  }
  const std::size_t winner = best_forecast_label(forecasts, actual);
  // Weight update only when the features describe the window these forecasts
  // came from (a select() since the last record()); the error EWMAs update
  // either way, so observe-only streams still train the error features.
  if (features_fresh_) {
    for (std::size_t p = 0; p < pool_size_; ++p) {
      const double target = p == winner ? 1.0 : -1.0;
      const double s = score(p);
      // Perceptron-with-margin rule: train on mistakes and low confidence.
      if (s * target > config_.margin) continue;
      double* w = weights_.data() + p * kFeatures;
      for (std::size_t f = 0; f < kSharedFeatures; ++f) {
        w[f] = std::clamp(w[f] + config_.learning_rate * target * features_[f],
                          -config_.clip, config_.clip);
      }
      w[kSharedFeatures] = std::clamp(
          w[kSharedFeatures] +
              config_.learning_rate * target * error_ewma_[p],
          -config_.clip, config_.clip);
    }
    features_fresh_ = false;
  }
  for (std::size_t p = 0; p < pool_size_; ++p) {
    const double err = forecasts[p] - actual;
    if (std::isfinite(err)) {
      error_ewma_[p] = config_.error_decay * error_ewma_[p] +
                       (1.0 - config_.error_decay) * std::abs(err);
    }
  }
  ++records_seen_;
}

SelectorCost PerceptronSelector::cost() const noexcept {
  return SelectorCost{SelectCostClass::kConstant, records_seen_,
                      config_.min_records};
}

std::unique_ptr<Selector> PerceptronSelector::clone() const {
  return std::make_unique<PerceptronSelector>(*this);
}

void PerceptronSelector::save(persist::io::Writer& w) const {
  w.u64(pool_size_);
  w.f64(config_.learning_rate);
  w.f64(config_.clip);
  w.f64(config_.margin);
  w.f64(config_.error_decay);
  w.u64(config_.min_records);
  w.u64(records_seen_);
  w.f64_span(weights_);
  w.f64_span(error_ewma_);
  // features_/features_fresh_ deliberately travel too: a snapshot can land
  // between a select() and its record(), and restore must not lose the
  // pending training example.
  w.boolean(features_fresh_);
  for (double f : features_) w.f64(f);
}

PerceptronSelector PerceptronSelector::loaded(persist::io::Reader& r) {
  const auto pool_size = static_cast<std::size_t>(r.u64());
  Config config;
  config.learning_rate = r.f64();
  config.clip = r.f64();
  config.margin = r.f64();
  config.error_decay = r.f64();
  config.min_records = static_cast<std::size_t>(r.u64());
  PerceptronSelector s(pool_size, config);
  s.records_seen_ = static_cast<std::size_t>(r.u64());
  const auto weights = r.f64_vector();
  const auto ewma = r.f64_vector();
  if (weights.size() != s.weights_.size() ||
      ewma.size() != s.error_ewma_.size()) {
    throw persist::CorruptData("PerceptronSelector: serialized size mismatch");
  }
  s.weights_ = weights;
  s.error_ewma_ = ewma;
  s.features_fresh_ = r.boolean();
  for (auto& f : s.features_) f = r.f64();
  return s;
}

}  // namespace larp::selection
