// Selector: a strategy that decides, at every step of a series walk, which
// pool member gets to make the forecast.
//
// This layer is where the paper and its baselines differ:
//   * KnnSelector      — the LARPredictor: classify the current window (§6.2);
//   * CumulativeMse    — the NWS model: lowest cumulative MSE so far (§2);
//   * WindowedCumMse   — NWS with a fixed error window (Fig. 6, "W-Cum.MSE");
//   * StaticSelector   — a single fixed expert (the LAST/AR/SW_AVG rows);
//   * OracleSelector   — the "perfect LARPredictor" P-LAR upper bound, which
//                        is deliberately non-causal (see needs_hindsight()).
//
// Protocol per step t: the runner calls select(window) to get a causal
// choice, lets the chosen predictor forecast, then — once the actual value
// materializes — calls record(forecasts, actual) with the forecasts of ALL
// pool members so error-tracking selectors can update their statistics.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "selection/selector_cost.hpp"

namespace larp::selection {

class Selector {
 public:
  virtual ~Selector() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Clears accumulated state (between folds / traces).
  virtual void reset();

  /// Causal choice of the pool label for the upcoming step, given the
  /// current normalized window (most recent value last).
  [[nodiscard]] virtual std::size_t select(std::span<const double> window) = 0;

  /// Soft selection: a weight per pool member (non-negative, summing to 1)
  /// for probability-weighted forecast combination — the "probability-based
  /// voting" combination strategy of the paper's §2 citations.  The default
  /// is the one-hot vector of select(); the k-NN selector returns its
  /// neighbour vote shares.
  [[nodiscard]] virtual std::vector<double> select_weights(
      std::span<const double> window, std::size_t pool_size);

  /// Allocation-free soft selection into caller-owned storage (resized to
  /// pool_size; no reallocation once capacity is established).  The default
  /// writes the one-hot vector of select(); hot-path selectors (k-NN)
  /// override it to reuse their internal scratch.
  virtual void select_weights_into(std::span<const double> window,
                                   std::size_t pool_size,
                                   std::vector<double>& out);

  /// Post-step feedback: the forecasts every pool member produced for this
  /// step, and the value that actually materialized.
  virtual void record(std::span<const double> forecasts, double actual);

  /// Online learning hook: absorbs one freshly labeled window into the
  /// selector's knowledge (classification selectors grow their index;
  /// error-tracking selectors have nothing to learn — default no-op).
  virtual void learn(std::span<const double> window, std::size_t label);

  /// True when learn() actually does something.
  [[nodiscard]] virtual bool supports_online_learning() const noexcept;

  /// Per-select cost class and training readiness (selector_cost.hpp) — what
  /// the serving layer reads to pick a tier per series.  The default reports
  /// the NWS shape: full-pool feedback per step, ready from construction.
  [[nodiscard]] virtual SelectorCost cost() const noexcept;

  /// True for selectors whose choice is defined in hindsight (the oracle).
  /// The runner must then score select_hindsight() instead of select().
  [[nodiscard]] virtual bool needs_hindsight() const noexcept;

  /// Hindsight choice: label with the smallest absolute forecast error,
  /// lowest label on ties.  Default implementation provided so any selector
  /// can be asked "what would the oracle have done".
  [[nodiscard]] virtual std::size_t select_hindsight(
      std::span<const double> forecasts, double actual) const;

  [[nodiscard]] virtual std::unique_ptr<Selector> clone() const = 0;
};

/// Label of the smallest value with lowest-index tie-breaking — the shared
/// argmin convention (paper class order LAST < AR < SW_AVG).  Non-finite
/// entries never win: a NaN/inf value is skipped, and only when EVERY entry
/// is non-finite does the call throw InvalidArgument (a label picked from
/// garbage would silently corrupt training labels and QA error history).
[[nodiscard]] std::size_t argmin_label(std::span<const double> values);

/// Label whose forecast has the smallest |forecast - actual|.  Non-finite
/// forecasts (a NaN from a mis-fitted expert) are skipped with the same
/// all-non-finite InvalidArgument guard as argmin_label — previously a NaN
/// at index 0 poisoned every `error < best_error` comparison and pinned the
/// hindsight label to 0.
[[nodiscard]] std::size_t best_forecast_label(std::span<const double> forecasts,
                                              double actual);

}  // namespace larp::selection
