// TournamentSelector: the branch-prediction tournament chooser transplanted
// to expert selection — one N-bit saturating up/down counter per pool
// member, updated from hindsight labels.
//
// select() is an argmax over P counters (a handful of nanoseconds, zero
// index maintenance); record() computes the hindsight winner of the step
// and bumps its counter up while every loser decays down, both saturating
// (stick at min/max, never wrap).  This is the FFORMPP/Barak insight in its
// cheapest possible form: "which expert has been winning lately" tracked in
// a few bytes — the fast tier TieredSelector serves from while a series is
// cold or its k-NN index is not ready.
#pragma once

#include <cstdint>

#include "selection/selector.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::selection {

class TournamentSelector final : public Selector {
 public:
  /// `bits` is the saturating-counter width (2 in the classic bimodal
  /// tables; counters live in [0, 2^bits - 1] and start at the weakly-taken
  /// midpoint).  `min_records` is the feedback count before cost() reports
  /// the selector trained.  Throws InvalidArgument for an empty pool or a
  /// counter width outside [1, 16].
  explicit TournamentSelector(std::size_t pool_size, unsigned bits = 2,
                              std::size_t min_records = 8);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  /// Absorbs one hindsight label directly (the warm-up walk's feedback).
  void learn(std::span<const double> window, std::size_t label) override;
  [[nodiscard]] bool supports_online_learning() const noexcept override {
    return true;
  }
  [[nodiscard]] SelectorCost cost() const noexcept override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  /// Current counter values (diagnostics / saturation tests).
  [[nodiscard]] const std::vector<std::uint16_t>& counters() const noexcept {
    return counters_;
  }

  /// Exact-state round-trip (parameters + counters), so a snapshotted cold
  /// tier resumes bit-identically.
  void save(persist::io::Writer& w) const;
  static TournamentSelector loaded(persist::io::Reader& r);

 private:
  void bump(std::size_t winner);

  unsigned bits_;
  std::uint16_t max_;  // saturation ceiling: 2^bits - 1
  std::size_t min_records_;
  std::size_t records_seen_ = 0;
  std::vector<std::uint16_t> counters_;
};

}  // namespace larp::selection
