#include "selection/selector.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace larp::selection {

void Selector::reset() {}

void Selector::record(std::span<const double> /*forecasts*/, double /*actual*/) {}

std::vector<double> Selector::select_weights(std::span<const double> window,
                                             std::size_t pool_size) {
  std::vector<double> weights;
  select_weights_into(window, pool_size, weights);
  return weights;
}

void Selector::select_weights_into(std::span<const double> window,
                                   std::size_t pool_size,
                                   std::vector<double>& out) {
  // Validate before touching `out`: select() may throw, and an out-of-pool
  // pick must not leave the caller's buffer half-clobbered on the throw.
  const std::size_t pick = select(window);
  if (pick >= pool_size) {
    throw InvalidArgument("select_weights: selected label outside the pool");
  }
  out.assign(pool_size, 0.0);
  out[pick] = 1.0;
}

void Selector::learn(std::span<const double> /*window*/, std::size_t /*label*/) {}

bool Selector::supports_online_learning() const noexcept { return false; }

SelectorCost Selector::cost() const noexcept { return SelectorCost{}; }

bool Selector::needs_hindsight() const noexcept { return false; }

std::size_t Selector::select_hindsight(std::span<const double> forecasts,
                                       double actual) const {
  return best_forecast_label(forecasts, actual);
}

std::size_t argmin_label(std::span<const double> values) {
  if (values.empty()) throw InvalidArgument("argmin_label: empty values");
  // Non-finite entries are skipped: a NaN never compares less-than, so with
  // a naive scan a NaN seeded at index 0 would win by default and silently
  // mislabel.  `best` stays "none" until the first finite value.
  std::size_t best = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) continue;
    if (best == values.size() || values[i] < values[best]) best = i;
  }
  if (best == values.size()) {
    throw InvalidArgument("argmin_label: all values non-finite");
  }
  return best;
}

std::size_t best_forecast_label(std::span<const double> forecasts, double actual) {
  if (forecasts.empty()) {
    throw InvalidArgument("best_forecast_label: empty forecasts");
  }
  // Direct argmin — no temporary error vector; strict < keeps the lowest
  // label on ties, matching argmin_label's convention.  Non-finite errors
  // (NaN forecast, or a non-finite actual) are skipped so they can never
  // shadow a real winner; all-non-finite throws instead of returning a
  // fabricated label 0.
  std::size_t best = forecasts.size();
  double best_error = 0.0;
  for (std::size_t i = 0; i < forecasts.size(); ++i) {
    const double error = std::abs(forecasts[i] - actual);
    if (!std::isfinite(error)) continue;
    if (best == forecasts.size() || error < best_error) {
      best_error = error;
      best = i;
    }
  }
  if (best == forecasts.size()) {
    throw InvalidArgument("best_forecast_label: all forecast errors non-finite");
  }
  return best;
}

}  // namespace larp::selection
