#include "selection/selector.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace larp::selection {

void Selector::reset() {}

void Selector::record(std::span<const double> /*forecasts*/, double /*actual*/) {}

std::vector<double> Selector::select_weights(std::span<const double> window,
                                             std::size_t pool_size) {
  std::vector<double> weights;
  select_weights_into(window, pool_size, weights);
  return weights;
}

void Selector::select_weights_into(std::span<const double> window,
                                   std::size_t pool_size,
                                   std::vector<double>& out) {
  out.assign(pool_size, 0.0);
  const std::size_t pick = select(window);
  if (pick >= pool_size) {
    throw InvalidArgument("select_weights: selected label outside the pool");
  }
  out[pick] = 1.0;
}

void Selector::learn(std::span<const double> /*window*/, std::size_t /*label*/) {}

bool Selector::supports_online_learning() const noexcept { return false; }

bool Selector::needs_hindsight() const noexcept { return false; }

std::size_t Selector::select_hindsight(std::span<const double> forecasts,
                                       double actual) const {
  return best_forecast_label(forecasts, actual);
}

std::size_t argmin_label(std::span<const double> values) {
  if (values.empty()) throw InvalidArgument("argmin_label: empty values");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[best]) best = i;
  }
  return best;
}

std::size_t best_forecast_label(std::span<const double> forecasts, double actual) {
  if (forecasts.empty()) {
    throw InvalidArgument("best_forecast_label: empty forecasts");
  }
  // Direct argmin — no temporary error vector; strict < keeps the lowest
  // label on ties, matching argmin_label's convention.
  std::size_t best = 0;
  double best_error = std::abs(forecasts[0] - actual);
  for (std::size_t i = 1; i < forecasts.size(); ++i) {
    const double error = std::abs(forecasts[i] - actual);
    if (error < best_error) {
      best_error = error;
      best = i;
    }
  }
  return best;
}

}  // namespace larp::selection
