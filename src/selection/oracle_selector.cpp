#include "selection/oracle_selector.hpp"

namespace larp::selection {

void OracleSelector::reset() { last_best_ = 0; }

std::size_t OracleSelector::select(std::span<const double> /*window*/) {
  return last_best_;
}

void OracleSelector::record(std::span<const double> forecasts, double actual) {
  last_best_ = best_forecast_label(forecasts, actual);
}

std::unique_ptr<Selector> OracleSelector::clone() const {
  return std::make_unique<OracleSelector>(*this);
}

}  // namespace larp::selection
