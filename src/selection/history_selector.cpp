#include "selection/history_selector.hpp"

#include <algorithm>

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::selection {

GlobalHistorySelector::GlobalHistorySelector(std::size_t pool_size,
                                             std::size_t history_length,
                                             std::size_t table_rows,
                                             unsigned bits,
                                             std::size_t min_records)
    : pool_size_(pool_size),
      history_length_(history_length),
      table_rows_(table_rows),
      bits_(bits),
      max_(0),
      min_records_(min_records),
      table_(table_rows * pool_size, 0) {
  if (pool_size == 0) throw InvalidArgument("GlobalHistorySelector: empty pool");
  if (history_length == 0) {
    throw InvalidArgument("GlobalHistorySelector: zero history length");
  }
  if (table_rows == 0) {
    throw InvalidArgument("GlobalHistorySelector: zero table rows");
  }
  if (bits < 1 || bits > 16) {
    throw InvalidArgument(
        "GlobalHistorySelector: counter bits must be in [1, 16]");
  }
  max_ = static_cast<std::uint16_t>((1u << bits) - 1u);
  // pool_size^history_length, saturating at 2^63 so the modulus never
  // overflows; past that point old winners age out by table aliasing alone.
  history_mod_ = 1;
  for (std::size_t i = 0; i < history_length; ++i) {
    if (history_mod_ > (1ull << 63) / pool_size) {
      history_mod_ = 0;  // 0 = "wider than u64": skip the shift-out modulus
      break;
    }
    history_mod_ *= pool_size;
  }
  reset();
}

std::string GlobalHistorySelector::name() const {
  return "GlobalHistory(" + std::to_string(history_length_) + "x" +
         std::to_string(table_rows_) + ")";
}

void GlobalHistorySelector::reset() {
  std::fill(table_.begin(), table_.end(),
            static_cast<std::uint16_t>(max_ / 2));
  history_code_ = 0;
  records_seen_ = 0;
}

std::size_t GlobalHistorySelector::select(std::span<const double> /*window*/) {
  const std::uint16_t* row = table_.data() + current_row() * pool_size_;
  std::size_t best = 0;
  for (std::size_t i = 1; i < pool_size_; ++i) {
    if (row[i] > row[best]) best = i;
  }
  return best;
}

void GlobalHistorySelector::absorb_winner(std::size_t winner) {
  // Train the row the current history addresses toward the winner...
  std::uint16_t* row = table_.data() + current_row() * pool_size_;
  for (std::size_t i = 0; i < pool_size_; ++i) {
    if (i == winner) {
      if (row[i] < max_) ++row[i];  // saturate, never wrap
    } else if (row[i] > 0) {
      --row[i];
    }
  }
  // ...then shift the winner into the register (oldest digit falls off).
  history_code_ = history_code_ * pool_size_ + winner;
  if (history_mod_ != 0) history_code_ %= history_mod_;
  ++records_seen_;
}

void GlobalHistorySelector::record(std::span<const double> forecasts,
                                   double actual) {
  if (forecasts.size() != pool_size_) {
    throw InvalidArgument(
        "GlobalHistorySelector: forecast count does not match pool size");
  }
  absorb_winner(best_forecast_label(forecasts, actual));
}

void GlobalHistorySelector::learn(std::span<const double> /*window*/,
                                  std::size_t label) {
  if (label >= pool_size_) {
    throw InvalidArgument("GlobalHistorySelector: label outside the pool");
  }
  absorb_winner(label);
}

SelectorCost GlobalHistorySelector::cost() const noexcept {
  return SelectorCost{SelectCostClass::kConstant, records_seen_, min_records_};
}

std::unique_ptr<Selector> GlobalHistorySelector::clone() const {
  return std::make_unique<GlobalHistorySelector>(*this);
}

void GlobalHistorySelector::save(persist::io::Writer& w) const {
  w.u64(pool_size_);
  w.u64(history_length_);
  w.u64(table_rows_);
  w.u8(static_cast<std::uint8_t>(bits_));
  w.u64(min_records_);
  w.u64(records_seen_);
  w.u64(history_code_);
  for (std::uint16_t c : table_) w.u64(c);
}

GlobalHistorySelector GlobalHistorySelector::loaded(persist::io::Reader& r) {
  const auto pool_size = static_cast<std::size_t>(r.u64());
  const auto history_length = static_cast<std::size_t>(r.u64());
  const auto table_rows = static_cast<std::size_t>(r.u64());
  const unsigned bits = r.u8();
  const auto min_records = static_cast<std::size_t>(r.u64());
  GlobalHistorySelector s(pool_size, history_length, table_rows, bits,
                          min_records);
  s.records_seen_ = static_cast<std::size_t>(r.u64());
  s.history_code_ = r.u64();
  for (auto& c : s.table_) {
    const auto v = r.u64();
    if (v > s.max_) {
      throw persist::CorruptData("GlobalHistorySelector: counter above ceiling");
    }
    c = static_cast<std::uint16_t>(v);
  }
  return s;
}

}  // namespace larp::selection
