// CentroidSelector: the LAR selection strategy with the nearest-centroid
// classifier substituted for k-NN (§5's "other types of classification
// algorithms"; compared in bench_ablation_classifier).
#pragma once

#include "ml/centroid.hpp"
#include "ml/pca.hpp"
#include "selection/selector.hpp"

namespace larp::selection {

class CentroidSelector final : public Selector {
 public:
  /// Takes the fitted projection and classifier from the training phase.
  CentroidSelector(ml::Pca pca, ml::NearestCentroidClassifier classifier);

  [[nodiscard]] std::string name() const override { return "LAR(centroid)"; }
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  /// Folds the PCA-projected window into its class centroid (online
  /// learning).
  void learn(std::span<const double> window, std::size_t label) override;
  [[nodiscard]] bool supports_online_learning() const noexcept override {
    return true;
  }
  /// One distance per class centroid — an O(P) index query, ready from
  /// construction.
  [[nodiscard]] SelectorCost cost() const noexcept override {
    return SelectorCost{SelectCostClass::kIndexQuery, 0, 0};
  }
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  [[nodiscard]] const ml::Pca& pca() const noexcept { return pca_; }
  [[nodiscard]] const ml::NearestCentroidClassifier& classifier() const noexcept {
    return classifier_;
  }

 private:
  ml::Pca pca_;
  ml::NearestCentroidClassifier classifier_;
  // Reused projection buffer; instances are externally serialized (see the
  // LarPredictor locking contract), so this is race-free.
  linalg::Vector reduced_scratch_;
};

}  // namespace larp::selection
