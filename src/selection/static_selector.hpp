// StaticSelector: always the same pool member.  The "single predictor" rows
// (LAST, AR, SW) of Table 2 are LAR runs with this selector substituted.
#pragma once

#include "selection/selector.hpp"

namespace larp::selection {

class StaticSelector final : public Selector {
 public:
  explicit StaticSelector(std::size_t label, std::string display_name = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  [[nodiscard]] SelectorCost cost() const noexcept override {
    return SelectorCost{SelectCostClass::kConstant, 0, 0};
  }
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  [[nodiscard]] std::size_t label() const noexcept { return label_; }

 private:
  std::size_t label_;
  std::string display_name_;
};

}  // namespace larp::selection
