#include "selection/tournament_selector.hpp"

#include <algorithm>

#include "persist/io.hpp"
#include "util/error.hpp"

namespace larp::selection {

TournamentSelector::TournamentSelector(std::size_t pool_size, unsigned bits,
                                       std::size_t min_records)
    : bits_(bits),
      max_(0),
      min_records_(min_records),
      counters_(pool_size, 0) {
  if (pool_size == 0) throw InvalidArgument("TournamentSelector: empty pool");
  if (bits < 1 || bits > 16) {
    throw InvalidArgument("TournamentSelector: counter bits must be in [1, 16]");
  }
  max_ = static_cast<std::uint16_t>((1u << bits) - 1u);
  reset();
}

std::string TournamentSelector::name() const {
  return "Tournament(" + std::to_string(bits_) + "b)";
}

void TournamentSelector::reset() {
  // Weakly-taken midpoint, like a freshly-zeroed bimodal table biased to
  // neither side; label 0 wins the cold-start tie, matching every other
  // selector's fallback.
  std::fill(counters_.begin(), counters_.end(),
            static_cast<std::uint16_t>(max_ / 2));
  records_seen_ = 0;
}

std::size_t TournamentSelector::select(std::span<const double> /*window*/) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counters_.size(); ++i) {
    if (counters_[i] > counters_[best]) best = i;
  }
  return best;
}

void TournamentSelector::bump(std::size_t winner) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i == winner) {
      if (counters_[i] < max_) ++counters_[i];  // saturate, never wrap
    } else if (counters_[i] > 0) {
      --counters_[i];
    }
  }
  ++records_seen_;
}

void TournamentSelector::record(std::span<const double> forecasts,
                                double actual) {
  if (forecasts.size() != counters_.size()) {
    throw InvalidArgument(
        "TournamentSelector: forecast count does not match pool size");
  }
  bump(best_forecast_label(forecasts, actual));
}

void TournamentSelector::learn(std::span<const double> /*window*/,
                               std::size_t label) {
  if (label >= counters_.size()) {
    throw InvalidArgument("TournamentSelector: label outside the pool");
  }
  bump(label);
}

SelectorCost TournamentSelector::cost() const noexcept {
  return SelectorCost{SelectCostClass::kConstant, records_seen_, min_records_};
}

std::unique_ptr<Selector> TournamentSelector::clone() const {
  return std::make_unique<TournamentSelector>(*this);
}

void TournamentSelector::save(persist::io::Writer& w) const {
  w.u64(counters_.size());
  w.u8(static_cast<std::uint8_t>(bits_));
  w.u64(min_records_);
  w.u64(records_seen_);
  for (std::uint16_t c : counters_) w.u64(c);
}

TournamentSelector TournamentSelector::loaded(persist::io::Reader& r) {
  const auto pool_size = static_cast<std::size_t>(r.u64());
  const unsigned bits = r.u8();
  const auto min_records = static_cast<std::size_t>(r.u64());
  TournamentSelector s(pool_size, bits, min_records);
  s.records_seen_ = static_cast<std::size_t>(r.u64());
  for (auto& c : s.counters_) {
    const auto v = r.u64();
    if (v > s.max_) {
      throw persist::CorruptData("TournamentSelector: counter above ceiling");
    }
    c = static_cast<std::uint16_t>(v);
  }
  return s;
}

}  // namespace larp::selection
