#include "selection/static_selector.hpp"

namespace larp::selection {

StaticSelector::StaticSelector(std::size_t label, std::string display_name)
    : label_(label), display_name_(std::move(display_name)) {}

std::string StaticSelector::name() const {
  if (!display_name_.empty()) return "STATIC(" + display_name_ + ")";
  return "STATIC(" + std::to_string(label_) + ")";
}

std::size_t StaticSelector::select(std::span<const double> /*window*/) {
  return label_;
}

std::unique_ptr<Selector> StaticSelector::clone() const {
  return std::make_unique<StaticSelector>(*this);
}

}  // namespace larp::selection
