// KnnSelector: the LARPredictor's selection strategy (§6.2).
//
// Owns a fitted PCA projection and a k-NN classifier built during the
// training phase (by core::LarPredictor).  select() projects the current
// normalized window into the reduced feature space, finds the k nearest
// labeled training windows, and majority-votes their best-predictor labels.
// No post-step feedback is needed — the knowledge lives in the training
// index, which is exactly the paper's point: only ONE predictor runs per
// test step.
#pragma once

#include "ml/knn.hpp"
#include "ml/pca.hpp"
#include "selection/selector.hpp"

namespace larp::selection {

class KnnSelector final : public Selector {
 public:
  /// Takes the projection and classifier produced by the training phase.
  /// Throws InvalidArgument if either is unfitted.
  KnnSelector(ml::Pca pca, ml::KnnClassifier classifier);

  [[nodiscard]] std::string name() const override { return "LAR(kNN)"; }
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  /// Neighbour vote shares (count of each label among the k nearest / k),
  /// written into caller-owned storage.  Zero-allocation in steady state:
  /// projection and neighbour search reuse the selector's internal scratch.
  void select_weights_into(std::span<const double> window,
                           std::size_t pool_size,
                           std::vector<double>& out) override;
  /// Projects the window through the training PCA and appends it to the
  /// k-NN index (online learning).
  void learn(std::span<const double> window, std::size_t label) override;
  [[nodiscard]] bool supports_online_learning() const noexcept override {
    return true;
  }
  /// An index query per select (kd-tree descent or brute-force scan); ready
  /// from construction — the fitted index IS the training.
  [[nodiscard]] SelectorCost cost() const noexcept override {
    return SelectorCost{SelectCostClass::kIndexQuery, 0, 0};
  }
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  [[nodiscard]] const ml::Pca& pca() const noexcept { return pca_; }
  [[nodiscard]] const ml::KnnClassifier& classifier() const noexcept {
    return classifier_;
  }

 private:
  ml::Pca pca_;
  ml::KnnClassifier classifier_;
  // Per-instance query scratch.  LarPredictor instances are externally
  // serialized (see core/lar_predictor.hpp's locking contract), so reusing
  // these across select() calls is race-free and keeps the steady-state
  // select path allocation-free.
  linalg::Vector reduced_scratch_;
  ml::NeighborScratch query_scratch_;
};

}  // namespace larp::selection
