#include "selection/nws_selector.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace larp::selection {

namespace {
template <typename Tracker>
std::size_t select_lowest(const std::vector<Tracker>& trackers) {
  // Before any feedback every tracker reads 0; argmin then returns label 0,
  // the documented cold-start fallback.
  std::vector<double> errors;
  errors.reserve(trackers.size());
  for (const auto& t : trackers) errors.push_back(t.value());
  return argmin_label(errors);
}

void require_matching(std::size_t forecasts, std::size_t tracked) {
  if (forecasts != tracked) {
    throw InvalidArgument("NWS selector: forecast count does not match pool size");
  }
}
}  // namespace

CumulativeMseSelector::CumulativeMseSelector(std::size_t pool_size)
    : trackers_(pool_size) {
  if (pool_size == 0) {
    throw InvalidArgument("CumulativeMseSelector: empty pool");
  }
}

void CumulativeMseSelector::reset() {
  for (auto& t : trackers_) t.reset();
}

std::size_t CumulativeMseSelector::select(std::span<const double> /*window*/) {
  return select_lowest(trackers_);
}

void CumulativeMseSelector::record(std::span<const double> forecasts,
                                   double actual) {
  require_matching(forecasts.size(), trackers_.size());
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    trackers_[i].add(forecasts[i], actual);
  }
}

std::unique_ptr<Selector> CumulativeMseSelector::clone() const {
  return std::make_unique<CumulativeMseSelector>(*this);
}

std::vector<double> CumulativeMseSelector::errors() const {
  std::vector<double> out;
  out.reserve(trackers_.size());
  for (const auto& t : trackers_) out.push_back(t.value());
  return out;
}

EwmaMseSelector::EwmaMseSelector(std::size_t pool_size, double decay)
    : decay_(decay), weighted_sq_(pool_size, 0.0), seen_(pool_size, false) {
  if (pool_size == 0) throw InvalidArgument("EwmaMseSelector: empty pool");
  if (!(decay > 0.0) || decay >= 1.0) {
    throw InvalidArgument("EwmaMseSelector: decay must be in (0, 1)");
  }
}

std::string EwmaMseSelector::name() const {
  return "EWMA-MSE(" + std::to_string(decay_) + ")";
}

void EwmaMseSelector::reset() {
  std::fill(weighted_sq_.begin(), weighted_sq_.end(), 0.0);
  std::fill(seen_.begin(), seen_.end(), false);
}

std::size_t EwmaMseSelector::select(std::span<const double> /*window*/) {
  // Argmin over SCORED members only (see seen_): before any feedback every
  // tracker reads 0.0, and an unseen member must not win on that phantom
  // zero once real errors exist.  Cold start (nothing seen) keeps the
  // documented label-0 fallback.
  std::size_t best = weighted_sq_.size();
  for (std::size_t i = 0; i < weighted_sq_.size(); ++i) {
    if (!seen_[i]) continue;
    if (best == weighted_sq_.size() || weighted_sq_[i] < weighted_sq_[best]) {
      best = i;
    }
  }
  return best == weighted_sq_.size() ? 0 : best;
}

void EwmaMseSelector::record(std::span<const double> forecasts, double actual) {
  require_matching(forecasts.size(), weighted_sq_.size());
  for (std::size_t i = 0; i < weighted_sq_.size(); ++i) {
    const double err = forecasts[i] - actual;
    weighted_sq_[i] = decay_ * weighted_sq_[i] + (1.0 - decay_) * err * err;
    seen_[i] = true;
  }
}

std::unique_ptr<Selector> EwmaMseSelector::clone() const {
  return std::make_unique<EwmaMseSelector>(*this);
}

std::vector<double> EwmaMseSelector::errors() const { return weighted_sq_; }

WindowedCumMseSelector::WindowedCumMseSelector(std::size_t pool_size,
                                               std::size_t window)
    : error_window_(window), trackers_(pool_size, stats::WindowedMse(window)) {
  if (pool_size == 0) {
    throw InvalidArgument("WindowedCumMseSelector: empty pool");
  }
}

std::string WindowedCumMseSelector::name() const {
  return "W-Cum.MSE(" + std::to_string(error_window_) + ")";
}

void WindowedCumMseSelector::reset() {
  for (auto& t : trackers_) t.reset();
}

std::size_t WindowedCumMseSelector::select(std::span<const double> /*window*/) {
  return select_lowest(trackers_);
}

void WindowedCumMseSelector::record(std::span<const double> forecasts,
                                    double actual) {
  require_matching(forecasts.size(), trackers_.size());
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    trackers_[i].add(forecasts[i], actual);
  }
}

std::unique_ptr<Selector> WindowedCumMseSelector::clone() const {
  return std::make_unique<WindowedCumMseSelector>(*this);
}

std::vector<double> WindowedCumMseSelector::errors() const {
  std::vector<double> out;
  out.reserve(trackers_.size());
  for (const auto& t : trackers_) out.push_back(t.value());
  return out;
}

}  // namespace larp::selection
