// OracleSelector: the "perfect LARPredictor" (P-LAR) of §7.2.1 — at every
// step it picks the pool member whose forecast turns out closest to the
// realized value.  By construction this is the upper bound on what any
// predictor-integration scheme over the same pool can achieve, which is how
// the paper uses it (Table 2's P-LAR column, Fig. 6's P-LARP series).
//
// It is non-causal: select() cannot be answered without the actual value, so
// needs_hindsight() is true and runners must score select_hindsight().
// select() still returns the *previous* step's best label (a causal
// "persistence oracle") so the class remains usable in online pipelines.
#pragma once

#include "selection/selector.hpp"

namespace larp::selection {

class OracleSelector final : public Selector {
 public:
  [[nodiscard]] std::string name() const override { return "P-LAR"; }
  void reset() override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  [[nodiscard]] bool needs_hindsight() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

 private:
  std::size_t last_best_ = 0;
};

}  // namespace larp::selection
