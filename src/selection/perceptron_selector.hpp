// PerceptronSelector: the perceptron branch predictor transplanted to
// expert selection — one tiny linear model per pool member over cheap
// window features, trained online from hindsight labels.
//
// This is the nanosecond-scale version of the meta-learning pool studies
// (FFORMPP / Barak et al.): simple features of the recent window plus each
// member's recent-error EWMA are enough to predict which expert wins next.
// Features per select(), all O(window) with zero allocation and no
// sqrt/divide on the hot path (the serial var -> sqrt -> divide chain would
// dominate an otherwise ~30-flop select; the series is already z-scored by
// the pipeline's normalizer, so raw second-moment and deviation features
// carry the same information at fixed scale):
//   f0  bias (1.0)
//   f1  last delta        w[n-1] - w[n-2]
//   f2  window mean
//   f3  window variance
//   f4  last-value deviation   w[n-1] - mean
// plus, per member p:
//   f5  recent-error EWMA of member p (from the record() feedback stream).
//
// Training is the classic perceptron rule with a margin: on the hindsight
// winner b, every member's score is pushed toward +1 (p == b) or -1
// (p != b) when wrong or under-confident, and every weight is clipped to
// [-clip, +clip] so adversarial feedback can never blow the weights up
// (branch predictors do the same with their n-bit weight registers).
#pragma once

#include <array>

#include "selection/selector.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::selection {

class PerceptronSelector final : public Selector {
 public:
  struct Config {
    double learning_rate = 0.25;
    double clip = 8.0;          // weight magnitude ceiling
    double margin = 1.0;        // train while |score| <= margin, like theta
    double error_decay = 0.9;   // recent-error EWMA decay
    std::size_t min_records = 8;
  };

  explicit PerceptronSelector(std::size_t pool_size)
      : PerceptronSelector(pool_size, Config()) {}
  PerceptronSelector(std::size_t pool_size, Config config);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  /// Scores every member on the current window's features; argmax wins
  /// (lowest label on ties).  Also caches the features so the next record()
  /// trains on exactly the window this choice saw.
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  [[nodiscard]] SelectorCost cost() const noexcept override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  /// Flat weight matrix, pool-member-major (diagnostics / clip tests).
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

  void save(persist::io::Writer& w) const;
  static PerceptronSelector loaded(persist::io::Reader& r);

 private:
  static constexpr std::size_t kSharedFeatures = 5;  // f0..f4 above
  static constexpr std::size_t kFeatures = kSharedFeatures + 1;  // + error EWMA

  [[nodiscard]] double score(std::size_t member) const;

  Config config_;
  std::size_t pool_size_;
  std::vector<double> weights_;     // pool_size_ x kFeatures, member-major
  std::vector<double> error_ewma_;  // per-member |error| EWMA
  std::array<double, kSharedFeatures> features_{};  // cached at select()
  bool features_fresh_ = false;
  std::size_t records_seen_ = 0;
  // select() hot-path cache: 1/n for the last window length seen (the
  // LarPredictor always passes the same length, so the divide runs once).
  std::size_t cached_n_ = 0;
  double cached_inv_n_ = 0.0;
};

}  // namespace larp::selection
