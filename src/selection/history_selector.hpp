// GlobalHistorySelector: a two-level (GAg-style) predictor over expert
// winners — a k-deep shift register of recent hindsight winners indexes a
// pattern table of per-member saturating counters.
//
// Where the tournament selector tracks "who wins lately" with no context,
// the pattern table learns CONDITIONAL streaks: "after LAST beat AR twice,
// SW_AVG wins next".  The history register encodes the last
// `history_length` winners base-pool_size; the table row is that code
// modulo `table_rows`, so (exactly like real pattern history tables) deep
// histories alias onto shared rows — bounded memory traded for occasional
// destructive interference, exercised by the aliasing test.
//
// select() is one row lookup + a P-way argmax; record() updates the row the
// CURRENT history addresses toward the step's hindsight winner, then shifts
// the winner into the register.  O(1), zero steady-state allocation.
#pragma once

#include <cstdint>

#include "selection/selector.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::selection {

class GlobalHistorySelector final : public Selector {
 public:
  /// `history_length` winners are remembered (k bits of history in the
  /// branch-predictor sense, one base-P digit each); the pattern table has
  /// `table_rows` rows of pool_size saturating `bits`-wide counters.
  /// Throws InvalidArgument for an empty pool, zero history, zero rows, or
  /// a counter width outside [1, 16].
  GlobalHistorySelector(std::size_t pool_size, std::size_t history_length = 4,
                        std::size_t table_rows = 64, unsigned bits = 2,
                        std::size_t min_records = 8);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  /// Absorbs one hindsight winner directly (warm-up walks).
  void learn(std::span<const double> window, std::size_t label) override;
  [[nodiscard]] bool supports_online_learning() const noexcept override {
    return true;
  }
  [[nodiscard]] SelectorCost cost() const noexcept override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  /// Row the current history addresses (diagnostics / aliasing tests).
  [[nodiscard]] std::size_t current_row() const noexcept {
    return static_cast<std::size_t>(history_code_ % table_rows_);
  }
  [[nodiscard]] std::size_t table_rows() const noexcept { return table_rows_; }

  void save(persist::io::Writer& w) const;
  static GlobalHistorySelector loaded(persist::io::Reader& r);

 private:
  void absorb_winner(std::size_t winner);

  std::size_t pool_size_;
  std::size_t history_length_;
  std::size_t table_rows_;
  unsigned bits_;
  std::uint16_t max_;
  std::size_t min_records_;
  std::uint64_t history_code_ = 0;  // base-pool_size shift register
  std::uint64_t history_mod_ = 0;   // pool_size^history_length (shift-out)
  std::vector<std::uint16_t> table_;  // table_rows_ x pool_size_, row-major
  std::size_t records_seen_ = 0;
};

}  // namespace larp::selection
