// SelectorCost: the tiny cost model the serving layer consults to pick a
// selection tier per series (ROADMAP: "a Selector cost model so the engine
// can pick the selector per series by traffic level").
//
// Every Selector reports two things:
//   * what one select() call costs, as a coarse class — O(1) counter reads
//     (the hardware-style tier), an index query (k-NN / kd-tree), or a full
//     parallel pool evaluation per step (the NWS baselines, whose select()
//     is cheap but whose record() feedback needs every member's forecast);
//   * how trained it is — feedback steps absorbed vs. the steps it wants
//     before its choices are better than the label-0 cold-start fallback.
//
// TieredSelector hands off from the O(1) tier to the primary (k-NN) tier
// the moment the primary reports ready().
#pragma once

#include <cstddef>

namespace larp::selection {

/// Coarse per-select() cost class, cheapest first.
enum class SelectCostClass {
  kConstant,    // O(1): saturating counters / perceptron dot / pattern table
  kIndexQuery,  // classifier index lookup: k-NN scan or kd-tree descent
  kFullPool,    // needs every pool member's forecast each step (NWS family)
};

/// One selector's cost + training-readiness report.
struct SelectorCost {
  SelectCostClass select_cost = SelectCostClass::kFullPool;
  /// Feedback steps (record()/learn() calls) absorbed so far.
  std::size_t records_seen = 0;
  /// Feedback steps wanted before select() is considered trained; 0 means
  /// the selector is ready from construction (k-NN: the fitted index IS the
  /// training).
  std::size_t records_needed = 0;

  [[nodiscard]] bool ready() const noexcept {
    return records_seen >= records_needed;
  }
};

}  // namespace larp::selection
