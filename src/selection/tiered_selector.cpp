#include "selection/tiered_selector.hpp"

#include "persist/io.hpp"
#include "selection/history_selector.hpp"
#include "selection/perceptron_selector.hpp"
#include "selection/tournament_selector.hpp"
#include "util/error.hpp"

namespace larp::selection {

std::unique_ptr<Selector> make_fast_selector(FastTier tier,
                                             std::size_t pool_size,
                                             const FastTierConfig& config) {
  switch (tier) {
    case FastTier::Tournament:
      return std::make_unique<TournamentSelector>(
          pool_size, config.counter_bits, config.min_records);
    case FastTier::Perceptron: {
      PerceptronSelector::Config pc;
      pc.learning_rate = config.perceptron_lr;
      pc.clip = config.perceptron_clip;
      pc.error_decay = config.error_decay;
      pc.min_records = config.min_records;
      return std::make_unique<PerceptronSelector>(pool_size, pc);
    }
    case FastTier::GlobalHistory:
      return std::make_unique<GlobalHistorySelector>(
          pool_size, config.history_length, config.table_rows,
          config.counter_bits, config.min_records);
    case FastTier::None:
      break;
  }
  throw InvalidArgument("make_fast_selector: FastTier::None has no selector");
}

namespace {
constexpr std::uint8_t kFastTournament = 1;
constexpr std::uint8_t kFastPerceptron = 2;
constexpr std::uint8_t kFastGlobalHistory = 3;
}  // namespace

void save_fast_selector(persist::io::Writer& w, const Selector& selector) {
  if (const auto* t = dynamic_cast<const TournamentSelector*>(&selector)) {
    w.u8(kFastTournament);
    t->save(w);
  } else if (const auto* p =
                 dynamic_cast<const PerceptronSelector*>(&selector)) {
    w.u8(kFastPerceptron);
    p->save(w);
  } else if (const auto* g =
                 dynamic_cast<const GlobalHistorySelector*>(&selector)) {
    w.u8(kFastGlobalHistory);
    g->save(w);
  } else {
    throw StateError("save_fast_selector: not a fast-tier selector");
  }
}

std::unique_ptr<Selector> load_fast_selector(persist::io::Reader& r) {
  const std::uint8_t kind = r.u8();
  try {
    switch (kind) {
      case kFastTournament:
        return std::make_unique<TournamentSelector>(
            TournamentSelector::loaded(r));
      case kFastPerceptron:
        return std::make_unique<PerceptronSelector>(
            PerceptronSelector::loaded(r));
      case kFastGlobalHistory:
        return std::make_unique<GlobalHistorySelector>(
            GlobalHistorySelector::loaded(r));
      default:
        break;
    }
  } catch (const persist::CorruptData&) {
    throw;
  } catch (const Error& e) {
    // An impossible constructor argument means the payload disagrees with
    // any state this process could have written — corruption, not usage.
    throw persist::CorruptData(e.what());
  }
  throw persist::CorruptData("load_fast_selector: unknown fast-selector kind");
}

TieredSelector::TieredSelector(std::unique_ptr<Selector> fast,
                               std::unique_ptr<Selector> primary)
    : fast_(std::move(fast)), primary_(std::move(primary)) {
  if (!fast_) throw InvalidArgument("TieredSelector: null fast tier");
}

void TieredSelector::promote(std::unique_ptr<Selector> primary) {
  if (!primary) throw InvalidArgument("TieredSelector::promote: null primary");
  primary_ = std::move(primary);
}

std::string TieredSelector::name() const {
  return "Tiered(" + fast_->name() + "->" +
         (primary_ ? primary_->name() : "-") + ")";
}

void TieredSelector::reset() {
  fast_->reset();
  if (primary_) primary_->reset();
}

std::size_t TieredSelector::select(std::span<const double> window) {
  return active().select(window);
}

void TieredSelector::select_weights_into(std::span<const double> window,
                                         std::size_t pool_size,
                                         std::vector<double>& out) {
  active().select_weights_into(window, pool_size, out);
}

void TieredSelector::record(std::span<const double> forecasts, double actual) {
  active().record(forecasts, actual);
}

void TieredSelector::learn(std::span<const double> window, std::size_t label) {
  active().learn(window, label);
}

bool TieredSelector::supports_online_learning() const noexcept {
  return active().supports_online_learning();
}

SelectorCost TieredSelector::cost() const noexcept { return active().cost(); }

std::unique_ptr<Selector> TieredSelector::clone() const {
  return std::make_unique<TieredSelector>(
      fast_->clone(), primary_ ? primary_->clone() : nullptr);
}

}  // namespace larp::selection
