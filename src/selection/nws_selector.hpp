// The Network Weather Service predictor-selection baselines (paper §2).
//
// NWS runs every pool member in parallel, tracks each member's prediction
// error against the realized measurements, and forecasts with the member
// whose error statistic is currently lowest:
//   * CumulativeMseSelector — MSE over ALL history ("Cum.MSE" in Fig. 6);
//   * WindowedCumMseSelector — MSE over the last `window` errors only
//     ("W-Cum.MSE"; the paper uses window = 2).
// Before any feedback both fall back to label 0 (LAST in the paper pool).
#pragma once

#include <vector>

#include "selection/selector.hpp"
#include "util/stats.hpp"

namespace larp::selection {

class CumulativeMseSelector final : public Selector {
 public:
  /// `pool_size` members are tracked; labels are 0..pool_size-1.
  explicit CumulativeMseSelector(std::size_t pool_size);

  [[nodiscard]] std::string name() const override { return "Cum.MSE"; }
  void reset() override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  /// Current cumulative MSE of each member (diagnostics / tests).
  [[nodiscard]] std::vector<double> errors() const;

 private:
  std::vector<stats::RunningMse> trackers_;
};

/// Exponentially-weighted MSE selection: the continuum between the two NWS
/// variants above — recent errors dominate but all history contributes with
/// geometrically decaying weight (extension member; ablated alongside the
/// paper baselines).  decay -> 1 approaches Cum.MSE, decay -> 0 approaches
/// W-Cum.MSE(1).
class EwmaMseSelector final : public Selector {
 public:
  /// decay in (0, 1): the per-step weight multiplier on old errors.
  EwmaMseSelector(std::size_t pool_size, double decay);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  /// Unscored members are excluded from the argmin: an unseen tracker reads
  /// 0.0 and would otherwise beat every member with real (nonzero) error.
  /// Falls back to label 0 only while NO member has been scored.
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  [[nodiscard]] std::vector<double> errors() const;

 private:
  double decay_;
  std::vector<double> weighted_sq_;  // exponentially weighted squared errors
  std::vector<bool> seen_;           // members with at least one scored error
};

class WindowedCumMseSelector final : public Selector {
 public:
  /// Tracks the last `window` squared errors per member (paper: window = 2).
  WindowedCumMseSelector(std::size_t pool_size, std::size_t window);

  [[nodiscard]] std::string name() const override;
  void reset() override;
  [[nodiscard]] std::size_t select(std::span<const double> window) override;
  void record(std::span<const double> forecasts, double actual) override;
  [[nodiscard]] std::unique_ptr<Selector> clone() const override;

  [[nodiscard]] std::vector<double> errors() const;

 private:
  std::size_t error_window_;
  std::vector<stats::WindowedMse> trackers_;
};

}  // namespace larp::selection
