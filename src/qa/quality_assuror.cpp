#include "qa/quality_assuror.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace larp::qa {

QualityAssuror::QualityAssuror(const tsdb::PredictionDatabase& db, QaConfig config)
    : db_(&db), config_(config) {
  if (config_.mse_threshold <= 0.0) {
    throw InvalidArgument("QualityAssuror: threshold must be positive");
  }
  if (config_.audit_window == 0 || config_.min_records == 0) {
    throw InvalidArgument("QualityAssuror: windows must be positive");
  }
}

void QualityAssuror::set_retrain_handler(RetrainHandler handler) {
  handler_ = std::move(handler);
}

AuditReport QualityAssuror::audit(const tsdb::SeriesKey& key) {
  AuditReport report;
  const auto records = db_->latest_resolved(key, config_.audit_window);
  report.records = records.size();
  if (records.size() < config_.min_records) return report;

  stats::RunningMse mse;
  for (const auto& [ts, record] : records) {
    mse.add(record.predicted, *record.observed);
  }
  report.audited = true;
  report.mse = mse.value();
  ++audits_;

  if (report.mse > config_.mse_threshold) {
    report.retrain_ordered = true;
    ++retrains_;
    LARP_LOG_INFO("qa") << "audit of " << key.to_string() << " MSE=" << report.mse
                        << " breached threshold " << config_.mse_threshold
                        << "; ordering re-training";
    if (handler_) handler_(key);
  }
  return report;
}

}  // namespace larp::qa
