#include "qa/prediction_service.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace larp::qa {

PredictionService::PredictionService(
    const tsdb::RoundRobinDatabase& performance_db,
    predictors::PredictorPool pool_prototype, ServiceConfig config)
    : performance_db_(&performance_db),
      profiler_(performance_db),
      pool_prototype_(std::move(pool_prototype)),
      config_(config),
      qa_(prediction_db_, config.quality) {
  if (config_.train_samples <= config_.lar.window + 1) {
    throw InvalidArgument("PredictionService: train_samples must exceed window+1");
  }
  if (config_.audit_every == 0) {
    throw InvalidArgument("PredictionService: audit_every must be positive");
  }
}

void PredictionService::train(const tsdb::SeriesKey& key) {
  const auto series =
      profiler_.extract_recent(key, config_.interval, config_.train_samples);
  if (series.size() < config_.train_samples) {
    throw StateError("PredictionService: only " + std::to_string(series.size()) +
                     " samples retained; need " +
                     std::to_string(config_.train_samples));
  }

  auto [it, inserted] = streams_.try_emplace(
      key, StreamState{core::LarPredictor(pool_prototype_.clone(), config_.lar),
                       0, std::nullopt, 0, 0});
  StreamState& state = it->second;
  state.predictor.train(series.values);
  state.next_unprocessed = series.axis.end();
  state.pending.reset();
  LARP_LOG_INFO("service") << "trained " << key.to_string() << " on "
                           << series.size() << " samples ending at "
                           << series.axis.end();
}

bool PredictionService::is_trained(const tsdb::SeriesKey& key) const noexcept {
  const auto it = streams_.find(key);
  return it != streams_.end() && it->second.predictor.trained();
}

void PredictionService::retrain_stream(const tsdb::SeriesKey& key) {
  const auto it = streams_.find(key);
  if (it == streams_.end()) return;
  const auto series =
      profiler_.extract_recent(key, config_.interval, config_.train_samples);
  if (series.size() < config_.lar.window + 2) return;  // not enough data yet
  it->second.predictor.retrain(series.values);
  ++retrains_;
}

std::size_t PredictionService::advance(const tsdb::SeriesKey& key) {
  const auto it = streams_.find(key);
  if (it == streams_.end() || !it->second.predictor.trained()) {
    throw StateError("PredictionService: stream not trained: " + key.to_string());
  }
  StreamState& state = it->second;

  const auto range = performance_db_->retained_range(key, config_.interval);
  if (!range) return 0;
  const Timestamp available_end = range->second + config_.interval;

  std::size_t processed = 0;
  while (state.next_unprocessed < available_end) {
    const Timestamp ts = state.next_unprocessed;
    const auto sample =
        performance_db_->fetch(key, config_.interval, ts, ts + config_.interval);
    const double value = sample.values.front();

    // Resolve the forecast that targeted this timestamp, if one is pending.
    if (state.pending && state.pending_ts == ts) {
      prediction_db_.record_observation(key, ts, value);
      state.pending.reset();
    }

    state.predictor.observe(value);
    ++state.processed;
    ++processed;
    state.next_unprocessed += config_.interval;

    // Issue the forecast for the next interval.
    const auto forecast = state.predictor.predict_next();
    const Timestamp target = state.next_unprocessed;
    prediction_db_.record_prediction(key, target, forecast.value, forecast.label);
    state.pending = forecast;
    state.pending_ts = target;

    // Audit on cadence; a breach re-trains from recent data.
    if (state.processed % config_.audit_every == 0) {
      qa_.set_retrain_handler([this](const tsdb::SeriesKey& k) {
        retrain_stream(k);
      });
      qa_.audit(key);
    }
  }
  return processed;
}

std::optional<core::LarPredictor::Forecast> PredictionService::pending_forecast(
    const tsdb::SeriesKey& key) const {
  const auto it = streams_.find(key);
  if (it == streams_.end()) return std::nullopt;
  return it->second.pending;
}

}  // namespace larp::qa
