// Prediction Quality Assuror (paper §3.2): "periodically audits the
// prediction performance by calculating the average MSE of historical
// prediction data stored in the prediction DB.  When the average MSE of the
// audit window exceeds a predefined threshold, it directs the LARPredictor
// to re-train the predictors and the classifier using recent performance
// data."
#pragma once

#include <functional>

#include "tsdb/prediction_db.hpp"

namespace larp::qa {

struct QaConfig {
  /// Re-train when the audited mean squared error exceeds this value
  /// (normalized units; 1.0 is the variance of a z-scored series).
  double mse_threshold = 1.0;
  /// Number of most recent resolved predictions per audit.
  std::size_t audit_window = 48;
  /// Audits are skipped until at least this many records are resolved.
  std::size_t min_records = 12;
};

/// Outcome of one audit pass.
struct AuditReport {
  bool audited = false;          // false when too few resolved records exist
  double mse = 0.0;              // audited MSE (valid when audited)
  bool retrain_ordered = false;  // threshold breached -> handler invoked
  std::size_t records = 0;       // resolved records inspected
};

class QualityAssuror {
 public:
  /// Called when an audit breaches the threshold; receives the stream key.
  using RetrainHandler = std::function<void(const tsdb::SeriesKey&)>;

  /// Borrows the prediction database (caller keeps it alive).
  /// Throws InvalidArgument for a non-positive threshold or zero windows.
  QualityAssuror(const tsdb::PredictionDatabase& db, QaConfig config);

  void set_retrain_handler(RetrainHandler handler);

  /// Audits one stream and, on breach, invokes the handler.
  AuditReport audit(const tsdb::SeriesKey& key);

  [[nodiscard]] const QaConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t audits_performed() const noexcept { return audits_; }
  [[nodiscard]] std::size_t retrains_ordered() const noexcept { return retrains_; }

  /// Reinstates counters from a durable snapshot.
  void restore_counters(std::size_t audits, std::size_t retrains) noexcept {
    audits_ = audits;
    retrains_ = retrains;
  }

 private:
  const tsdb::PredictionDatabase* db_;
  QaConfig config_;
  RetrainHandler handler_;
  std::size_t audits_ = 0;
  std::size_t retrains_ = 0;
};

}  // namespace larp::qa
