// PredictionService: the end-to-end prototype of the paper's Figure 1 —
// monitoring agent → performance (round-robin) database → profiler →
// LARPredictor → prediction database → Quality Assuror, wired together.
//
// Usage per stream: train(key) bootstraps a LarPredictor from the database;
// advance(key) then consumes every newly retained sample in order, resolving
// the pending forecast, feeding the observation to the predictor, issuing
// the next forecast into the prediction DB, and periodically letting the QA
// audit (which may order a re-train on recent data).
#pragma once

#include <map>
#include <optional>

#include "core/lar_predictor.hpp"
#include "qa/quality_assuror.hpp"
#include "tsdb/profiler.hpp"

namespace larp::qa {

struct ServiceConfig {
  core::LarConfig lar;
  QaConfig quality;
  /// Sampling interval of the streams the service predicts (the profiler
  /// extraction resolution; 5 minutes in the paper's prototype).
  Timestamp interval = kFiveMinutes;
  /// Samples extracted for (re-)training.
  std::size_t train_samples = 144;
  /// Audit cadence: one QA audit every this many processed samples.
  std::size_t audit_every = 24;
};

class PredictionService {
 public:
  /// Borrows the performance database (the monitoring agent keeps filling
  /// it); owns the prediction database and per-stream predictors.
  PredictionService(const tsdb::RoundRobinDatabase& performance_db,
                    predictors::PredictorPool pool_prototype,
                    ServiceConfig config);

  /// Bootstraps the stream's predictor from the most recent train_samples.
  /// Throws if the database does not retain enough data yet.
  void train(const tsdb::SeriesKey& key);

  [[nodiscard]] bool is_trained(const tsdb::SeriesKey& key) const noexcept;

  /// Processes every sample retained since the last call: resolves the
  /// pending forecast, observes, forecasts the next interval, audits on
  /// cadence.  Returns the number of samples processed.
  std::size_t advance(const tsdb::SeriesKey& key);

  /// The forecast currently pending for the stream (next timestamp), if any.
  [[nodiscard]] std::optional<core::LarPredictor::Forecast> pending_forecast(
      const tsdb::SeriesKey& key) const;

  [[nodiscard]] const tsdb::PredictionDatabase& prediction_db() const noexcept {
    return prediction_db_;
  }
  [[nodiscard]] const QualityAssuror& quality_assuror() const noexcept {
    return qa_;
  }
  [[nodiscard]] std::size_t retrains() const noexcept { return retrains_; }

 private:
  struct StreamState {
    core::LarPredictor predictor;
    Timestamp next_unprocessed = 0;  // timestamp of the next sample to consume
    std::optional<core::LarPredictor::Forecast> pending;
    Timestamp pending_ts = 0;
    std::size_t processed = 0;
  };

  void retrain_stream(const tsdb::SeriesKey& key);

  const tsdb::RoundRobinDatabase* performance_db_;
  tsdb::Profiler profiler_;
  predictors::PredictorPool pool_prototype_;
  ServiceConfig config_;
  tsdb::PredictionDatabase prediction_db_;
  QualityAssuror qa_;
  std::map<tsdb::SeriesKey, StreamState> streams_;
  std::size_t retrains_ = 0;
};

}  // namespace larp::qa
