// Levinson–Durbin recursion for symmetric Toeplitz systems.
//
// This is the kernel behind the Yule–Walker AR fit (paper §4, eq. 4): the
// autocorrelation matrix of a stationary series is symmetric Toeplitz, and
// Levinson–Durbin solves R·psi = r in O(p^2) instead of O(p^3), returning
// the AR coefficients together with the innovation variance and reflection
// coefficients (useful both for diagnostics and for order-selection tests).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace larp::linalg {

/// Output of the Levinson–Durbin recursion of order p.
struct LevinsonResult {
  /// AR coefficients psi_1..psi_p (coefficients[i] multiplies Z_{t-1-i}).
  Vector coefficients;
  /// Innovation (one-step prediction error) variance after order p.
  double innovation_variance = 0.0;
  /// Reflection (partial autocorrelation) coefficients k_1..k_p.
  Vector reflection;
};

/// Runs the recursion on autocorrelations r_0..r_p (length p+1; r_0 is the
/// zero-lag term and must be positive).  Throws InvalidArgument for a short
/// input and NumericalError when the recursion becomes unstable (predicted
/// error variance underflows to <= 0, i.e. the system is singular).
[[nodiscard]] LevinsonResult levinson_durbin(std::span<const double> autocorr);

/// Convenience: solves the order-p Yule–Walker system from a raw series by
/// first estimating biased autocorrelations.  A constant series yields an
/// all-zero coefficient vector (the AR fit degenerates to predicting the
/// mean, which is 0 for normalized input).
[[nodiscard]] LevinsonResult yule_walker(std::span<const double> series,
                                         std::size_t order);

/// Akaike Final Prediction Error order selection: runs one Levinson–Durbin
/// recursion to max_order and returns the order p in [1, max_order] that
/// minimizes FPE(p) = innovation_variance(p) * (N + p + 1) / (N - p - 1).
/// Constant series return order 1.  Throws like yule_walker for short input.
[[nodiscard]] std::size_t select_ar_order(std::span<const double> series,
                                          std::size_t max_order);

}  // namespace larp::linalg
