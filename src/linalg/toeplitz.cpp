#include "linalg/toeplitz.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::linalg {

LevinsonResult levinson_durbin(std::span<const double> autocorr) {
  if (autocorr.size() < 2) {
    throw InvalidArgument("levinson_durbin: need r_0 and at least r_1");
  }
  const std::size_t p = autocorr.size() - 1;
  if (autocorr[0] <= 0.0) {
    throw NumericalError("levinson_durbin: r_0 must be positive");
  }

  LevinsonResult result;
  result.coefficients.assign(p, 0.0);
  result.reflection.assign(p, 0.0);

  Vector a(p, 0.0);       // current coefficient estimate
  Vector a_prev(p, 0.0);  // previous order's coefficients
  double error = autocorr[0];

  for (std::size_t k = 0; k < p; ++k) {
    double acc = autocorr[k + 1];
    for (std::size_t j = 0; j < k; ++j) acc -= a[j] * autocorr[k - j];
    const double kappa = acc / error;
    if (!std::isfinite(kappa)) {
      throw NumericalError("levinson_durbin: recursion diverged");
    }
    result.reflection[k] = kappa;

    a_prev = a;
    a[k] = kappa;
    for (std::size_t j = 0; j < k; ++j) a[j] = a_prev[j] - kappa * a_prev[k - 1 - j];

    error *= (1.0 - kappa * kappa);
    if (error <= 0.0) {
      // Exactly predictable series (e.g. pure sinusoid sampled on-grid).
      // Clamp instead of failing: the coefficients so far are still the
      // minimum-MSE solution and downstream prediction remains well-defined.
      error = 0.0;
      for (std::size_t j = k + 1; j < p; ++j) {
        result.reflection[j] = 0.0;
      }
      break;
    }
  }

  result.coefficients = a;
  result.innovation_variance = error;
  return result;
}

std::size_t select_ar_order(std::span<const double> series,
                            std::size_t max_order) {
  if (max_order == 0) {
    throw InvalidArgument("select_ar_order: max_order must be positive");
  }
  if (series.size() <= max_order) {
    throw InvalidArgument("select_ar_order: series shorter than max_order+1");
  }
  if (stats::variance(series) == 0.0) return 1;

  const auto acf = stats::autocorrelations(series, max_order);
  const double n = static_cast<double>(series.size());
  std::size_t best_order = 1;
  double best_fpe = std::numeric_limits<double>::infinity();
  // One recursion per candidate order: O(max_order^3) total, negligible at
  // the window sizes in this domain.  (A single full recursion exposes the
  // per-order error via 1-k_i^2 products, but re-running keeps the clamping
  // semantics of levinson_durbin intact.)
  for (std::size_t p = 1; p <= max_order; ++p) {
    const auto solution =
        levinson_durbin(std::span<const double>(acf.data(), p + 1));
    const double dp = static_cast<double>(p);
    const double fpe =
        solution.innovation_variance * (n + dp + 1.0) / (n - dp - 1.0);
    if (fpe < best_fpe) {
      best_fpe = fpe;
      best_order = p;
    }
  }
  return best_order;
}

LevinsonResult yule_walker(std::span<const double> series, std::size_t order) {
  if (order == 0) throw InvalidArgument("yule_walker: order must be positive");
  if (series.size() <= order) {
    throw InvalidArgument("yule_walker: series shorter than AR order");
  }
  const auto acf = stats::autocorrelations(series, order);
  // A constant series has zero variance: the best linear predictor is the
  // (zero) mean, i.e. all-zero AR coefficients.
  if (stats::variance(series) == 0.0) {
    LevinsonResult degenerate;
    degenerate.coefficients.assign(order, 0.0);
    degenerate.reflection.assign(order, 0.0);
    degenerate.innovation_variance = 0.0;
    return degenerate;
  }
  return levinson_durbin(acf);
}

}  // namespace larp::linalg
