// Covariance estimation for sample matrices (rows = observations,
// columns = features), the input to the PCA stage.
#pragma once

#include "linalg/matrix.hpp"

namespace larp::linalg {

/// Per-column means of a sample matrix.
[[nodiscard]] Vector column_means(const Matrix& samples);

/// Sample covariance matrix (divides by N-1; by N when N == 1).
/// Throws InvalidArgument for an empty matrix.
[[nodiscard]] Matrix covariance(const Matrix& samples);

/// Covariance given precomputed column means (avoids a second pass when the
/// caller also needs the means for centering).
[[nodiscard]] Matrix covariance(const Matrix& samples, const Vector& means);

/// Returns `samples` with each column shifted to zero mean; also outputs the
/// means used so the transform can be replayed on test data.
[[nodiscard]] Matrix centered(const Matrix& samples, Vector& means_out);

}  // namespace larp::linalg
