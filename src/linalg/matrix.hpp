// Dense row-major matrix used by the PCA and classifier substrates.
//
// The library replaces the paper's Matlab kernels, so this type favours
// clarity and numerical reproducibility over BLAS-level performance: data
// sizes in this domain are windows of tens of values and training sets of a
// few thousand rows.  Storage is a single contiguous buffer (cache-friendly
// row traversal) and row views are std::span, so the ML layer never copies.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace larp::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  /// Construction from nested initializer lists; all rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix whose rows are the given equal-length vectors.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws InvalidArgument out of range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Mutable / immutable view of row r.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Appends one row (length must equal cols(); an empty matrix adopts the
  /// row's length as its column count).
  void append_row(std::span<const double> values);

  /// Copy of column c.
  [[nodiscard]] Vector col(std::size_t c) const;

  /// Raw storage (row-major).
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product; throws InvalidArgument on inner-dimension mismatch.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Matrix–vector product (x.size() must equal cols()).
  [[nodiscard]] Vector operator*(const Vector& x) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scale) noexcept;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Largest |a_ij| off the diagonal (Jacobi sweep convergence measure).
  [[nodiscard]] double max_off_diagonal() const noexcept;

  /// True when |a_ij - a_ji| <= tol for all pairs.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const noexcept;

  /// "rows x cols" plus the leading elements — for error messages and logs.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean dot product; throws InvalidArgument on length mismatch.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) norm.
[[nodiscard]] double norm(std::span<const double> xs) noexcept;

/// Squared Euclidean distance between two equal-length points; the k-NN
/// classifier uses this to avoid the sqrt in eq. (6) of the paper.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

/// Euclidean distance (eq. 6).
[[nodiscard]] double distance(std::span<const double> a, std::span<const double> b);

}  // namespace larp::linalg
