#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace larp::linalg {

EigenDecomposition eigen_symmetric(const Matrix& input, const JacobiOptions& options) {
  if (input.rows() != input.cols()) {
    throw InvalidArgument("eigen_symmetric: matrix must be square");
  }
  if (!input.is_symmetric(1e-9 * (1.0 + input.frobenius_norm()))) {
    throw InvalidArgument("eigen_symmetric: matrix must be symmetric");
  }

  const std::size_t n = input.rows();
  Matrix a = input;                 // working copy, driven to diagonal form
  Matrix v = Matrix::identity(n);   // accumulated rotations
  if (n == 0) return {};

  const double scale = std::max(a.frobenius_norm(), 1e-300);
  const double threshold = options.tolerance * scale;

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (a.max_off_diagonal() <= threshold) break;
    if (sweep == options.max_sweeps - 1) {
      throw NumericalError("eigen_symmetric: Jacobi iteration did not converge");
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= threshold * 1e-3) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Rotation angle that zeroes a(p,q) (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to rows/columns p and q of `a`.
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        // Accumulate into the eigenvector matrix.
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Collect eigenvalues and sort descending, permuting eigenvectors to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.values[j] = a(src, src);
    // Fix the sign convention: the largest-magnitude component of each
    // eigenvector is made positive so results are deterministic across runs.
    std::size_t pivot = 0;
    double pivot_mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mag = std::abs(v(i, src));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot = i;
      }
    }
    const double sign = v(pivot, src) < 0.0 ? -1.0 : 1.0;
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = sign * v(i, src);
  }
  return out;
}

}  // namespace larp::linalg
