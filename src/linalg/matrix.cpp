#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/kernels.hpp"
#include "util/error.hpp"

namespace larp::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw InvalidArgument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  Matrix m;
  m.rows_ = rows.size();
  m.cols_ = rows.empty() ? 0 : rows.front().size();
  m.data_.reserve(m.rows_ * m.cols_);
  for (const auto& row : rows) {
    if (row.size() != m.cols_) {
      throw InvalidArgument("Matrix::from_rows: ragged rows");
    }
    m.data_.insert(m.data_.end(), row.begin(), row.end());
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw InvalidArgument("Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw InvalidArgument("Matrix::at out of range");
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw InvalidArgument("Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw InvalidArgument("Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::append_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw InvalidArgument("Matrix::append_row: width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Vector Matrix::col(std::size_t c) const {
  if (c >= cols_) throw InvalidArgument("Matrix::col out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw InvalidArgument("Matrix multiply: inner dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps the inner traversal contiguous for both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* rhs_row = rhs.data_.data() + k * rhs.cols_;
      double* out_row = out.data_.data() + i * out.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += aik * rhs_row[j];
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& x) const {
  if (x.size() != cols_) {
    throw InvalidArgument("Matrix-vector multiply: dimension mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    out[i] = dot(row(i), x);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw InvalidArgument("Matrix addition: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw InvalidArgument("Matrix subtraction: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) noexcept {
  for (double& value : data_) value *= scale;
  return *this;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double value : data_) acc += value * value;
  return std::sqrt(acc);
}

double Matrix::max_off_diagonal() const noexcept {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (r != c) best = std::max(best, std::abs((*this)(r, c)));
    }
  }
  return best;
}

bool Matrix::is_symmetric(double tol) const noexcept {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::describe() const {
  std::ostringstream os;
  os << rows_ << 'x' << cols_ << " [";
  const std::size_t shown = std::min<std::size_t>(data_.size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (data_.size() > shown) os << ", ...";
  os << ']';
  return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw InvalidArgument("dot: length mismatch");
  return kernels::dot(a.data(), b.data(), a.size());
}

double norm(std::span<const double> xs) noexcept {
  return std::sqrt(kernels::dot(xs.data(), xs.data(), xs.size()));
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw InvalidArgument("squared_distance: length mismatch");
  return kernels::squared_distance(a.data(), b.data(), a.size());
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace larp::linalg
