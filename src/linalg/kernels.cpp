#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LARP_KERNELS_AVX2 1
#include <immintrin.h>
#else
#define LARP_KERNELS_AVX2 0
#endif

namespace larp::linalg::kernels {

// ---------------------------------------------------------------------------
// Scalar variants.  Reductions use four explicit lanes (element i mod 4) and
// the (l0+l2)+(l1+l3) combine so they execute the exact IEEE operation
// sequence of the AVX2 variants — this is what makes dispatch bit-identical.
// The lane structure also hands the compiler an auto-vectorizable loop with
// no cross-iteration dependence.
// ---------------------------------------------------------------------------
namespace {

double dot_scalar(const double* a, const double* b, std::size_t n) noexcept {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double dot_centered_scalar(const double* a, const double* b, std::size_t n,
                           double center) noexcept {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * (b[i] - center);
    l1 += a[i + 1] * (b[i + 1] - center);
    l2 += a[i + 2] * (b[i + 2] - center);
    l3 += a[i + 3] * (b[i + 3] - center);
  }
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) sum += a[i] * (b[i] - center);
  return sum;
}

double squared_distance_scalar(const double* a, const double* b,
                               std::size_t n) noexcept {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  double sum = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void batch_squared_distance_scalar(const double* points, std::size_t n_points,
                                   std::size_t dims, const double* query,
                                   double* out) noexcept {
  if (dims == 2) {
    // The paper's configuration: 2 PCA components.  Each distance is the
    // two-term sum d0^2 + d1^2 — the same operation sequence the per-point
    // kernel's sequential tail performs, so values stay bit-identical.
    const double q0 = query[0], q1 = query[1];
    for (std::size_t i = 0; i < n_points; ++i) {
      const double d0 = points[2 * i] - q0;
      const double d1 = points[2 * i + 1] - q1;
      out[i] = d0 * d0 + d1 * d1;
    }
    return;
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    out[i] = squared_distance_scalar(points + i * dims, query, dims);
  }
}

void axpy_scalar(double alpha, const double* x, double* y,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void zscore_scalar(const double* x, std::size_t n, double mean, double stddev,
                   double* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = (x[i] - mean) / stddev;
}

void zscore_inverse_scalar(const double* x, std::size_t n, double mean,
                           double stddev, double* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = mean + x[i] * stddev;
}

// ---------------------------------------------------------------------------
// AVX2 variants.  Plain vmulpd/vaddpd only — no FMA contraction, so every
// lane performs the same two roundings as the scalar code.
// ---------------------------------------------------------------------------
#if LARP_KERNELS_AVX2

__attribute__((target("avx2"))) double reduce4(__m256d acc) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(acc);       // lanes 0, 1
  const __m128d hi = _mm256_extractf128_pd(acc, 1);     // lanes 2, 3
  const __m128d pair = _mm_add_pd(lo, hi);              // [l0+l2, l1+l3]
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

__attribute__((target("avx2"))) double dot_avx2(const double* a,
                                                const double* b,
                                                std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double sum = reduce4(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2"))) double dot_centered_avx2(
    const double* a, const double* b, std::size_t n, double center) noexcept {
  const __m256d vcenter = _mm256_set1_pd(center);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d centered =
        _mm256_sub_pd(_mm256_loadu_pd(b + i), vcenter);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), centered));
  }
  double sum = reduce4(acc);
  for (; i < n; ++i) sum += a[i] * (b[i] - center);
  return sum;
}

__attribute__((target("avx2"))) double squared_distance_avx2(
    const double* a, const double* b, std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double sum = reduce4(acc);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) void batch_squared_distance_avx2(
    const double* points, std::size_t n_points, std::size_t dims,
    const double* query, double* out) noexcept {
  if (dims == 2) {
    // Four points per iteration: two 256-bit loads hold points [i, i+1] and
    // [i+2, i+3] as interleaved (x, y) pairs.  hadd_pd sums each pair
    // in-lane — the same single d0^2 + d1^2 addition as the scalar path —
    // and yields [d_i, d_{i+2}, d_{i+1}, d_{i+3}], which permute4x64
    // reorders to memory order.
    const __m256d q = _mm256_setr_pd(query[0], query[1], query[0], query[1]);
    std::size_t i = 0;
    for (; i + 4 <= n_points; i += 4) {
      const __m256d d01 = _mm256_sub_pd(_mm256_loadu_pd(points + 2 * i), q);
      const __m256d d23 =
          _mm256_sub_pd(_mm256_loadu_pd(points + 2 * i + 4), q);
      const __m256d sums =
          _mm256_hadd_pd(_mm256_mul_pd(d01, d01), _mm256_mul_pd(d23, d23));
      _mm256_storeu_pd(out + i,
                       _mm256_permute4x64_pd(sums, _MM_SHUFFLE(3, 1, 2, 0)));
    }
    const double q0 = query[0], q1 = query[1];
    for (; i < n_points; ++i) {
      const double d0 = points[2 * i] - q0;
      const double d1 = points[2 * i + 1] - q1;
      out[i] = d0 * d0 + d1 * d1;
    }
    return;
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    out[i] = squared_distance_avx2(points + i * dims, query, dims);
  }
}

__attribute__((target("avx2"))) void axpy_avx2(double alpha, const double* x,
                                               double* y,
                                               std::size_t n) noexcept {
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d updated = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(valpha, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, updated);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void zscore_avx2(const double* x, std::size_t n,
                                                 double mean, double stddev,
                                                 double* out) noexcept {
  const __m256d vmean = _mm256_set1_pd(mean);
  const __m256d vstd = _mm256_set1_pd(stddev);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), vmean), vstd));
  }
  for (; i < n; ++i) out[i] = (x[i] - mean) / stddev;
}

__attribute__((target("avx2"))) void zscore_inverse_avx2(
    const double* x, std::size_t n, double mean, double stddev,
    double* out) noexcept {
  const __m256d vmean = _mm256_set1_pd(mean);
  const __m256d vstd = _mm256_set1_pd(stddev);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(vmean, _mm256_mul_pd(_mm256_loadu_pd(x + i), vstd)));
  }
  for (; i < n; ++i) out[i] = mean + x[i] * stddev;
}

#endif  // LARP_KERNELS_AVX2

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Isa detect() noexcept {
#if LARP_KERNELS_AVX2
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
#endif
  return Isa::Scalar;
}

std::atomic<Isa>& active_slot() noexcept {
  static std::atomic<Isa> slot{detect()};
  return slot;
}

inline bool use_avx2() noexcept {
#if LARP_KERNELS_AVX2
  return active_slot().load(std::memory_order_relaxed) == Isa::Avx2;
#else
  return false;
#endif
}

}  // namespace

Isa detected_isa() noexcept {
  static const Isa isa = detect();
  return isa;
}

Isa active_isa() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

bool avx2_available() noexcept { return detected_isa() == Isa::Avx2; }

void force_isa(std::optional<Isa> isa) {
  if (isa && *isa == Isa::Avx2 && !avx2_available()) {
    throw InvalidArgument("kernels::force_isa: AVX2 not supported on this host");
  }
  active_slot().store(isa.value_or(detected_isa()), std::memory_order_relaxed);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
#if LARP_KERNELS_AVX2
  if (use_avx2()) return dot_avx2(a, b, n);
#endif
  return dot_scalar(a, b, n);
}

double dot_centered(const double* a, const double* b, std::size_t n,
                    double center) noexcept {
#if LARP_KERNELS_AVX2
  if (use_avx2()) return dot_centered_avx2(a, b, n, center);
#endif
  return dot_centered_scalar(a, b, n, center);
}

double squared_distance(const double* a, const double* b,
                        std::size_t n) noexcept {
#if LARP_KERNELS_AVX2
  if (use_avx2()) return squared_distance_avx2(a, b, n);
#endif
  return squared_distance_scalar(a, b, n);
}

void batch_squared_distance(const double* points, std::size_t n_points,
                            std::size_t dims, const double* query,
                            double* out) noexcept {
  if (n_points == 0) return;  // the fast paths pre-load query components
#if LARP_KERNELS_AVX2
  if (use_avx2()) {
    return batch_squared_distance_avx2(points, n_points, dims, query, out);
  }
#endif
  batch_squared_distance_scalar(points, n_points, dims, query, out);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept {
#if LARP_KERNELS_AVX2
  if (use_avx2()) return axpy_avx2(alpha, x, y, n);
#endif
  axpy_scalar(alpha, x, y, n);
}

void zscore(const double* x, std::size_t n, double mean, double stddev,
            double* out) noexcept {
#if LARP_KERNELS_AVX2
  if (use_avx2()) return zscore_avx2(x, n, mean, stddev, out);
#endif
  zscore_scalar(x, n, mean, stddev, out);
}

void zscore_inverse(const double* x, std::size_t n, double mean, double stddev,
                    double* out) noexcept {
#if LARP_KERNELS_AVX2
  if (use_avx2()) return zscore_inverse_avx2(x, n, mean, stddev, out);
#endif
  zscore_inverse_scalar(x, n, mean, stddev, out);
}

void project_centered(const double* x, const double* mu, const double* basis,
                      std::size_t m, std::size_t n, double* out) noexcept {
  std::fill(out, out + n, 0.0);
  // Row sweep: each row of the basis contributes alpha_i * A(i, :) to the
  // output, so the inner loop is contiguous in A and vectorizes — and the
  // per-component accumulation order over i matches the naive column-dot
  // formulation exactly (same additions, same order).
  for (std::size_t i = 0; i < m; ++i) {
    axpy(x[i] - mu[i], basis + i * n, out, n);
  }
}

}  // namespace larp::linalg::kernels
