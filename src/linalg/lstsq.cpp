#include "linalg/lstsq.hpp"

#include <cmath>

#include "util/error.hpp"

namespace larp::linalg {

Vector solve_dense(Matrix a, Vector b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    throw InvalidArgument("solve_dense: shape mismatch");
  }
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-300) {
      throw NumericalError("solve_dense: singular system");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

Vector solve_least_squares(const Matrix& a, const Vector& b, double ridge) {
  if (a.rows() != b.size()) {
    throw InvalidArgument("solve_least_squares: row count mismatch");
  }
  if (a.rows() < a.cols()) {
    throw InvalidArgument("solve_least_squares: underdetermined system");
  }
  const std::size_t n = a.cols();
  // Form the normal equations without materializing aᵀ.
  Matrix ata(n, n);
  Vector atb(n, 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < n; ++i) {
      atb[i] += row[i] * b[r];
      for (std::size_t j = i; j < n; ++j) ata(i, j) += row[i] * row[j];
    }
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += ata(i, i);
  const double damping = ridge * (trace > 0.0 ? trace / static_cast<double>(n) : 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    ata(i, i) += damping;
    for (std::size_t j = i + 1; j < n; ++j) ata(j, i) = ata(i, j);
  }
  return solve_dense(std::move(ata), std::move(atb));
}

}  // namespace larp::linalg
