#include "linalg/covariance.hpp"

#include "util/error.hpp"

namespace larp::linalg {

Vector column_means(const Matrix& samples) {
  if (samples.rows() == 0) {
    throw InvalidArgument("column_means: empty sample matrix");
  }
  Vector means(samples.cols(), 0.0);
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    const auto row = samples.row(r);
    for (std::size_t c = 0; c < samples.cols(); ++c) means[c] += row[c];
  }
  const double inv = 1.0 / static_cast<double>(samples.rows());
  for (double& m : means) m *= inv;
  return means;
}

Matrix covariance(const Matrix& samples) {
  return covariance(samples, column_means(samples));
}

Matrix covariance(const Matrix& samples, const Vector& means) {
  if (samples.rows() == 0) {
    throw InvalidArgument("covariance: empty sample matrix");
  }
  if (means.size() != samples.cols()) {
    throw InvalidArgument("covariance: means length mismatch");
  }
  const std::size_t n = samples.rows();
  const std::size_t d = samples.cols();
  Matrix cov(d, d);
  // Accumulate the upper triangle of sum((x-mu)(x-mu)^T) row by row.
  Vector centered_row(d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = samples.row(r);
    for (std::size_t c = 0; c < d; ++c) centered_row[c] = row[c] - means[c];
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = centered_row[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += xi * centered_row[j];
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      const double value = cov(i, j) / denom;
      cov(i, j) = value;
      cov(j, i) = value;
    }
  }
  return cov;
}

Matrix centered(const Matrix& samples, Vector& means_out) {
  means_out = column_means(samples);
  Matrix out = samples;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] -= means_out[c];
  }
  return out;
}

}  // namespace larp::linalg
