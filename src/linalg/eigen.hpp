// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// This replaces the Matlab `eig`/`princomp` calls the paper relied on.  The
// Jacobi method is the right tool here: PCA covariance matrices in this
// domain are small (window sizes m <= 64), dense, symmetric, and the method
// delivers eigenvalues to machine precision with orthonormal eigenvectors —
// the properties the PCA projection and its tests rely on.
#pragma once

#include "linalg/matrix.hpp"

namespace larp::linalg {

/// Result of a symmetric eigendecomposition, sorted by descending eigenvalue.
struct EigenDecomposition {
  /// Eigenvalues, largest first.
  Vector values;
  /// Column j of `vectors` is the unit eigenvector for values[j].
  Matrix vectors;
};

/// Options for the Jacobi iteration.
struct JacobiOptions {
  /// Convergence threshold on the largest off-diagonal magnitude relative to
  /// the Frobenius norm of the input.
  double tolerance = 1e-12;
  /// Safety cap on full sweeps; the method converges quadratically so real
  /// inputs finish in < 15 sweeps.
  int max_sweeps = 100;
};

/// Decomposes a symmetric matrix; throws InvalidArgument if `a` is not
/// square/symmetric and NumericalError if the sweep cap is hit.
[[nodiscard]] EigenDecomposition eigen_symmetric(const Matrix& a,
                                                 const JacobiOptions& options = {});

}  // namespace larp::linalg
