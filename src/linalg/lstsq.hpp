// Dense least squares via the normal equations, for small well-conditioned
// regression problems (the ARMA Hannan–Rissanen step, polynomial fits).
#pragma once

#include "linalg/matrix.hpp"

namespace larp::linalg {

/// Solves the square system a·x = b by Gaussian elimination with partial
/// pivoting.  Throws InvalidArgument on shape mismatch and NumericalError
/// when a pivot vanishes (singular system).
[[nodiscard]] Vector solve_dense(Matrix a, Vector b);

/// Minimizes ||a·x - b||_2 through the normal equations aᵀa·x = aᵀb.
/// Requires rows >= cols; a small ridge term (relative to trace(aᵀa)) keeps
/// rank-deficient designs solvable, which matters for regressing on
/// residuals that can be near-collinear.  Throws InvalidArgument on shape
/// mismatch or an underdetermined system.
[[nodiscard]] Vector solve_least_squares(const Matrix& a, const Vector& b,
                                         double ridge = 1e-9);

}  // namespace larp::linalg
