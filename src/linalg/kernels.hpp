// larp::linalg::kernels — the vectorized primitives under the serving hot
// path (observe -> frame -> normalize -> PCA-project -> kNN -> forecast).
//
// Every kernel has a scalar implementation and, on x86-64 builds, an AVX2
// variant selected once at startup by runtime CPUID detection.  The two are
// BIT-IDENTICAL by construction: both accumulate reductions in the same four
// virtual lanes (element i lands in lane i mod 4), combine the lanes in the
// same (l0+l2)+(l1+l3) order, process the tail sequentially afterwards, and
// neither uses FMA contraction — so forecasts do not depend on the host CPU,
// which the dispatch-parity tests assert.
//
// Dispatch can be overridden (force_isa) so tests and benchmarks can pin
// either variant; the override is process-global and not thread-safe against
// concurrent kernel calls — set it up front, as the tests do.
#pragma once

#include <cstddef>
#include <optional>

namespace larp::linalg::kernels {

/// Instruction set an individual kernel call runs with.
enum class Isa {
  Scalar,  // portable C++, auto-vectorizable, 4-lane accumulation
  Avx2,    // 256-bit AVX2 intrinsics (x86-64 only)
};

/// Best ISA the running CPU supports (detected once, cached).
[[nodiscard]] Isa detected_isa() noexcept;

/// ISA the kernels currently dispatch to (override or detected).
[[nodiscard]] Isa active_isa() noexcept;

/// True when the AVX2 variant exists in this build AND the CPU supports it.
[[nodiscard]] bool avx2_available() noexcept;

/// Test/bench override: force dispatch to `isa` (std::nullopt restores
/// autodetection).  Throws InvalidArgument when forcing Avx2 on a host
/// without AVX2 support.
void force_isa(std::optional<Isa> isa);

/// RAII guard for force_isa in tests.
class IsaOverrideGuard {
 public:
  explicit IsaOverrideGuard(Isa isa) { force_isa(isa); }
  ~IsaOverrideGuard() { force_isa(std::nullopt); }
  IsaOverrideGuard(const IsaOverrideGuard&) = delete;
  IsaOverrideGuard& operator=(const IsaOverrideGuard&) = delete;
};

/// sum_i a[i] * b[i]
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// sum_i a[i] * (b[i] - center) — the AR coefficient product on a
/// mean-centered window without materializing the centered copy.
[[nodiscard]] double dot_centered(const double* a, const double* b,
                                  std::size_t n, double center) noexcept;

/// sum_i (a[i] - b[i])^2 — the kNN / kd-tree / centroid distance kernel.
[[nodiscard]] double squared_distance(const double* a, const double* b,
                                      std::size_t n) noexcept;

/// out[i] = squared distance from `query` to row i of a row-major
/// (n_points x dims) block — the brute-force kNN scan as ONE kernel call,
/// so dispatch happens once per scan instead of once per point and the
/// dims == 2 case (the paper's PCA-reduced windows) vectorizes ACROSS
/// points.  Each out[i] is bit-identical to squared_distance on that row.
void batch_squared_distance(const double* points, std::size_t n_points,
                            std::size_t dims, const double* query,
                            double* out) noexcept;

/// y[i] += alpha * x[i]
void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;

/// out[i] = (x[i] - mean) / stddev — batched z-score (sub+div keeps the
/// exact rounding of the scalar ZScoreNormalizer::transform).
void zscore(const double* x, std::size_t n, double mean, double stddev,
            double* out) noexcept;

/// out[i] = mean + x[i] * stddev — batched inverse z-score.
void zscore_inverse(const double* x, std::size_t n, double mean, double stddev,
                    double* out) noexcept;

/// gemv-style centered projection: out[j] = sum_i (x[i] - mu[i]) * A(i, j)
/// for a row-major m x n matrix A (leading dimension = n).  Implemented as a
/// row sweep of axpy so the inner loop is contiguous in A — this is the PCA
/// projection x -> basis^T (x - mu) without per-sample temporaries.
void project_centered(const double* x, const double* mu, const double* basis,
                      std::size_t m, std::size_t n, double* out) noexcept;

}  // namespace larp::linalg::kernels
