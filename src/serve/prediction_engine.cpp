#include "serve/prediction_engine.hpp"

#include <chrono>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace larp::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t nanos_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

}  // namespace

PredictionEngine::PredictionEngine(predictors::PredictorPool pool_prototype,
                                   EngineConfig config)
    : pool_prototype_(std::move(pool_prototype)),
      config_(config),
      pool_(config.threads) {
  if (pool_prototype_.empty()) {
    throw InvalidArgument("PredictionEngine: empty pool prototype");
  }
  if (config_.shards == 0) {
    throw InvalidArgument("PredictionEngine: need at least one shard");
  }
  if (config_.train_samples < config_.lar.window + 2) {
    throw InvalidArgument(
        "PredictionEngine: train_samples must be at least window + 2");
  }
  if (config_.history_capacity < config_.train_samples) {
    config_.history_capacity = config_.train_samples;
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->qa.emplace(shard->predictions, config_.quality);
    // The handler runs inside audit() while the shard mutex is held by the
    // auditing thread, so the flag write is race-free.
    Shard* raw = shard.get();
    shard->qa->set_retrain_handler([raw](const tsdb::SeriesKey& key) {
      const auto it = raw->series.find(key);
      if (it != raw->series.end()) it->second.retrain_requested = true;
    });
    shards_.push_back(std::move(shard));
  }
  LARP_LOG_INFO("serve") << "PredictionEngine: " << config_.shards
                         << " shards, " << pool_.size() << " threads, pool of "
                         << pool_prototype_.size();
}

PredictionEngine::Shard& PredictionEngine::shard_of(const tsdb::SeriesKey& key) {
  return *shards_[std::hash<tsdb::SeriesKey>{}(key) % shards_.size()];
}

const PredictionEngine::Shard& PredictionEngine::shard_of(
    const tsdb::SeriesKey& key) const {
  return *shards_[std::hash<tsdb::SeriesKey>{}(key) % shards_.size()];
}

template <typename KeyOf, typename Fn>
void PredictionEngine::for_each_shard(std::size_t count, const KeyOf& key_of,
                                      const Fn& fn) {
  // Group batch indices by shard (preserving batch order within a shard),
  // then run one task per non-empty shard so each mutex is taken once.
  // The grouping buffers are thread-local so steady-state batches reuse
  // their capacity instead of allocating one vector per shard per call;
  // concurrent observe()/predict() callers each get their own scratch.
  thread_local std::vector<std::vector<std::size_t>> by_shard_tls;
  thread_local std::vector<std::size_t> active_tls;
  // Bind the caller thread's instances to ordinary references: a lambda does
  // not capture thread_local storage, so naming the TLS variables inside the
  // parallel_for body would resolve to each worker's own (empty) buffers.
  auto& by_shard = by_shard_tls;
  auto& active = active_tls;
  if (by_shard.size() < shards_.size()) by_shard.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) by_shard[s].clear();
  for (std::size_t i = 0; i < count; ++i) {
    by_shard[std::hash<tsdb::SeriesKey>{}(key_of(i)) % shards_.size()]
        .push_back(i);
  }
  active.clear();
  active.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }
  if (active.size() <= 1 || pool_.size() <= 1) {
    for (std::size_t s : active) fn(s, by_shard[s]);
    return;
  }
  pool_.parallel_for(0, active.size(), [&](std::size_t a) {
    fn(active[a], by_shard[active[a]]);
  });
}

void PredictionEngine::train_series(Shard& shard, const tsdb::SeriesKey& key,
                                    SeriesState& state, bool is_retrain) {
  const std::size_t take =
      std::min(state.history.size(), config_.train_samples);
  const std::vector<double> recent(state.history.end() - take,
                                   state.history.end());
  if (is_retrain) {
    state.predictor->retrain(recent);
    // Forget the audited records that triggered the order — including any
    // still-pending forecast the pre-retrain predictor issued — so the next
    // audit judges the re-trained predictor on fresh forecasts only.
    shard.predictions.prune_before(key, state.next_ts + 1);
    ++shard.retrains;
  } else {
    state.predictor.emplace(pool_prototype_.clone(), config_.lar);
    state.predictor->train(recent);
    ++shard.trains;
  }
  state.retrain_requested = false;
}

void PredictionEngine::absorb(Shard& shard, const tsdb::SeriesKey& key,
                              double value) {
  SeriesState& state = shard.series[key];

  // Resolve the forecast issued for this logical timestamp, if any.
  if (state.predictor) {
    if (const auto record = shard.predictions.find(key, state.next_ts);
        record && !record->resolved()) {
      shard.predictions.record_observation(key, state.next_ts, value);
      const double err = record->predicted - value;
      ++shard.resolved;
      shard.abs_error_sum += std::abs(err);
      shard.sq_error_sum += err * err;
    }
    state.predictor->observe(value);
  }

  state.history.push_back(value);
  while (state.history.size() > config_.history_capacity) {
    state.history.pop_front();
  }
  ++state.next_ts;

  // Lazy training once enough history has accumulated.
  if (!state.predictor && state.history.size() >= config_.train_samples) {
    train_series(shard, key, state, /*is_retrain=*/false);
    return;
  }

  // QA audit on cadence; a breach flags the series and we re-train from the
  // retained history right away.
  if (state.predictor && config_.audit_every > 0 &&
      ++state.since_audit >= config_.audit_every) {
    state.since_audit = 0;
    (void)shard.qa->audit(key);
    if (state.retrain_requested) {
      train_series(shard, key, state, /*is_retrain=*/true);
    }
  }
}

void PredictionEngine::observe(std::span<const Observation> batch) {
  const auto start = Clock::now();
  for_each_shard(
      batch.size(), [&](std::size_t i) -> const tsdb::SeriesKey& {
        return batch[i].key;
      },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        Shard& shard = *shards_[s];
        std::lock_guard lock(shard.mutex);
        for (std::size_t i : indices) {
          absorb(shard, batch[i].key, batch[i].value);
        }
      });
  observations_.fetch_add(batch.size(), std::memory_order_relaxed);
  observe_nanos_.fetch_add(nanos_since(start), std::memory_order_relaxed);
}

void PredictionEngine::observe(const tsdb::SeriesKey& key, double value) {
  const Observation one{key, value};
  observe(std::span<const Observation>(&one, 1));
}

Prediction PredictionEngine::forecast(Shard& shard,
                                      const tsdb::SeriesKey& key) {
  const auto it = shard.series.find(key);
  if (it == shard.series.end() || !it->second.predictor) return Prediction{};
  SeriesState& state = it->second;
  const auto raw = state.predictor->predict_next();
  // Forecasts in the DB are immutable once issued; re-predicting the same
  // step keeps the first record (the predictor itself tracks only the
  // latest pending value for residuals).
  if (!shard.predictions.find(key, state.next_ts)) {
    shard.predictions.record_prediction(key, state.next_ts, raw.value,
                                        raw.label);
  }
  return Prediction{true, raw.value, raw.label, raw.uncertainty};
}

std::vector<Prediction> PredictionEngine::predict(
    std::span<const tsdb::SeriesKey> keys) {
  const auto start = Clock::now();
  std::vector<Prediction> out(keys.size());
  for_each_shard(
      keys.size(),
      [&](std::size_t i) -> const tsdb::SeriesKey& { return keys[i]; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        Shard& shard = *shards_[s];
        std::lock_guard lock(shard.mutex);
        for (std::size_t i : indices) out[i] = forecast(shard, keys[i]);
      });
  predictions_.fetch_add(keys.size(), std::memory_order_relaxed);
  predict_nanos_.fetch_add(nanos_since(start), std::memory_order_relaxed);
  return out;
}

Prediction PredictionEngine::predict(const tsdb::SeriesKey& key) {
  return predict(std::span<const tsdb::SeriesKey>(&key, 1)).front();
}

std::size_t PredictionEngine::series_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    count += shard->series.size();
  }
  return count;
}

bool PredictionEngine::is_trained(const tsdb::SeriesKey& key) const {
  const Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.series.find(key);
  return it != shard.series.end() && it->second.predictor.has_value();
}

EngineStats PredictionEngine::stats() const {
  EngineStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    stats.series += shard->series.size();
    for (const auto& [key, state] : shard->series) {
      if (state.predictor) ++stats.trained_series;
    }
    stats.trains += shard->trains;
    stats.retrains += shard->retrains;
    stats.audits += shard->qa->audits_performed();
    stats.resolved += shard->resolved;
    stats.mean_absolute_error += shard->abs_error_sum;
    stats.mean_squared_error += shard->sq_error_sum;
  }
  if (stats.resolved > 0) {
    stats.mean_absolute_error /= static_cast<double>(stats.resolved);
    stats.mean_squared_error /= static_cast<double>(stats.resolved);
  }
  stats.observations = observations_.load(std::memory_order_relaxed);
  stats.predictions = predictions_.load(std::memory_order_relaxed);
  stats.observe_seconds =
      static_cast<double>(observe_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  stats.predict_seconds =
      static_cast<double>(predict_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

}  // namespace larp::serve
