#include "serve/prediction_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "persist/file.hpp"
#include "persist/snapshot.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace larp::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t nanos_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

// Engine snapshot payload version (inside the persist::snapshot container,
// which carries its own format version and checksum).
//
//   v1 — engine-global observe/predict counters after the config, then the
//        shard sections each leading with their own WAL watermark (written
//        by the old stop-the-world snapshot);
//   v2 — a shard-count-prefixed watermark table after the config (written
//        up front so restore knows every shard's replay cut before reading
//        any section), then the shard sections, each carrying its own
//        traffic counters.  Written by the incremental snapshot.
//   v3 — v2 plus the fast-tier identity (lar.fast_tier, its tuning, and
//        fast_train_samples) in the config block and a per-shard
//        fast_trains counter.  Older payloads load with the tier off.
//   v4 — v3 plus Gorilla-style compression (DESIGN.md §11): a per-shard
//        raw-vs-encoded byte accounting table after the watermark table,
//        and shard sections that carry the WAL payload codec state
//        (dictionary + XOR chains, cut at the shard's watermark) and
//        bit-packed series blocks — XOR-encoded history samples and
//        delta-of-delta/XOR prediction records.  Predictor internals stay
//        in their own opaque save_state() encoding.
//
// restore() reads all four: v1 maps its global counters onto shard 0,
// which preserves every aggregate stats() total.
constexpr std::uint32_t kEnginePayloadVersion = 4;

// WAL frame types.  predict() frames matter for bit-identical recovery:
// predict_next() mutates the predictor's pending-forecast state and the
// prediction DB, both of which feed the residual/uncertainty stream.
constexpr std::uint8_t kWalObserve = 0;
constexpr std::uint8_t kWalPredict = 1;
constexpr std::uint8_t kWalErase = 2;

std::uint8_t checked_enum(persist::io::Reader& r, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > 1) {
    throw persist::CorruptData(std::string("engine snapshot: bad ") + what);
  }
  return v;
}

// The identity-defining configuration travels in the snapshot so a restored
// engine reproduces the original's behaviour exactly; runtime knobs
// (threads, durability tuning) deliberately stay out.
void save_engine_config(persist::io::Writer& w, const EngineConfig& c) {
  const auto& l = c.lar;
  w.u64(l.window);
  w.u64(l.pca_components);
  w.f64(l.pca_min_variance);
  w.u8(l.classifier == core::ClassifierKind::NearestCentroid ? 1 : 0);
  w.u64(l.knn_k);
  w.u8(l.knn_backend == ml::KnnBackend::KdTree ? 1 : 0);
  w.u8(l.labeling == core::Labeling::WindowMse ? 1 : 0);
  w.u64(l.label_window);
  w.u64(l.uncertainty_window);
  w.boolean(l.soft_vote);
  w.boolean(l.online_learning);
  w.boolean(l.predict_in_pca_space);
  w.f64(c.quality.mse_threshold);
  w.u64(c.quality.audit_window);
  w.u64(c.quality.min_records);
  w.u64(c.shards);
  w.u64(c.train_samples);
  w.u64(c.history_capacity);
  w.u64(c.audit_every);
  // v3: the cold-start fast tier is identity-defining too — a restored
  // engine must fast-train/hand off at exactly the same observations.
  w.u8(static_cast<std::uint8_t>(l.fast_tier));
  w.u64(l.fast.counter_bits);
  w.u64(l.fast.history_length);
  w.u64(l.fast.table_rows);
  w.u64(l.fast.min_records);
  w.f64(l.fast.perceptron_lr);
  w.f64(l.fast.perceptron_clip);
  w.f64(l.fast.error_decay);
  w.u64(c.fast_train_samples);
}

void load_engine_config(persist::io::Reader& r, EngineConfig& c,
                        std::uint32_t payload_version) {
  auto& l = c.lar;
  l.window = static_cast<std::size_t>(r.u64());
  l.pca_components = static_cast<std::size_t>(r.u64());
  l.pca_min_variance = r.f64();
  l.classifier = checked_enum(r, "classifier") != 0
                     ? core::ClassifierKind::NearestCentroid
                     : core::ClassifierKind::Knn;
  l.knn_k = static_cast<std::size_t>(r.u64());
  l.knn_backend = checked_enum(r, "knn backend") != 0 ? ml::KnnBackend::KdTree
                                                      : ml::KnnBackend::BruteForce;
  l.labeling = checked_enum(r, "labeling") != 0 ? core::Labeling::WindowMse
                                                : core::Labeling::StepAbsoluteError;
  l.label_window = static_cast<std::size_t>(r.u64());
  l.uncertainty_window = static_cast<std::size_t>(r.u64());
  l.soft_vote = r.boolean();
  l.online_learning = r.boolean();
  l.predict_in_pca_space = r.boolean();
  c.quality.mse_threshold = r.f64();
  c.quality.audit_window = static_cast<std::size_t>(r.u64());
  c.quality.min_records = static_cast<std::size_t>(r.u64());
  c.shards = static_cast<std::size_t>(r.u64());
  c.train_samples = static_cast<std::size_t>(r.u64());
  c.history_capacity = static_cast<std::size_t>(r.u64());
  c.audit_every = static_cast<std::size_t>(r.u64());
  if (payload_version >= 3) {
    const std::uint8_t tier = r.u8();
    if (tier > static_cast<std::uint8_t>(selection::FastTier::GlobalHistory)) {
      throw persist::CorruptData("engine snapshot: bad fast tier");
    }
    l.fast_tier = static_cast<selection::FastTier>(tier);
    l.fast.counter_bits = static_cast<unsigned>(r.u64());
    l.fast.history_length = static_cast<std::size_t>(r.u64());
    l.fast.table_rows = static_cast<std::size_t>(r.u64());
    l.fast.min_records = static_cast<std::size_t>(r.u64());
    l.fast.perceptron_lr = r.f64();
    l.fast.perceptron_clip = r.f64();
    l.fast.error_decay = r.f64();
    c.fast_train_samples = static_cast<std::size_t>(r.u64());
  } else {
    // Pre-tier snapshot: the tier did not exist, so it stays off.
    l.fast_tier = selection::FastTier::None;
    l.fast = selection::FastTierConfig{};
    c.fast_train_samples = 0;
  }
}

}  // namespace

PredictionEngine::PredictionEngine(predictors::PredictorPool pool_prototype,
                                   EngineConfig config)
    : pool_prototype_(std::move(pool_prototype)),
      config_(config),
      pool_(config.threads) {
  if (pool_prototype_.empty()) {
    throw InvalidArgument("PredictionEngine: empty pool prototype");
  }
  if (config_.shards == 0) {
    throw InvalidArgument("PredictionEngine: need at least one shard");
  }
  if (config_.train_samples < config_.lar.window + 2) {
    throw InvalidArgument(
        "PredictionEngine: train_samples must be at least window + 2");
  }
  if (config_.history_capacity < config_.train_samples) {
    config_.history_capacity = config_.train_samples;
  }
  if (config_.fast_train_samples > 0) {
    if (config_.lar.fast_tier == selection::FastTier::None) {
      throw InvalidArgument(
          "PredictionEngine: fast_train_samples requires lar.fast_tier");
    }
    if (config_.fast_train_samples < config_.lar.window + 2) {
      throw InvalidArgument(
          "PredictionEngine: fast_train_samples must be at least window + 2");
    }
    if (config_.fast_train_samples >= config_.train_samples) {
      throw InvalidArgument(
          "PredictionEngine: fast_train_samples must be below train_samples");
    }
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->qa.emplace(shard->predictions, config_.quality);
    // The handler runs inside audit() while the shard mutex is held by the
    // auditing thread, so the flag write is race-free.
    Shard* raw = shard.get();
    shard->qa->set_retrain_handler([raw](const tsdb::SeriesKey& key) {
      const auto it = raw->series.find(key);
      if (it != raw->series.end()) it->second.retrain_requested = true;
    });
    shards_.push_back(std::move(shard));
  }
  if (!config_.durability.data_dir.empty()) {
    persist::ensure_directory(config_.durability.data_dir);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->wal.emplace(config_.durability.data_dir,
                              static_cast<std::uint32_t>(s),
                              config_.durability.wal);
    }
    start_syncer();
  }
  LARP_LOG_INFO("serve") << "PredictionEngine: " << config_.shards
                         << " shards, " << pool_.size() << " threads, pool of "
                         << pool_prototype_.size();
}

PredictionEngine::~PredictionEngine() {
  // Join the maintenance thread first so the final flush below cannot race
  // a background sync_published() against writers being torn down.
  syncer_.reset();
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (shard->wal) shard->wal->sync();
  }
}

void PredictionEngine::start_syncer() {
  const persist::WalConfig& wal_cfg = config_.durability.wal;
  async_wal_ = wal_cfg.mode == persist::DurabilityMode::Async &&
               wal_cfg.fsync != persist::FsyncPolicy::Always;
  const bool idle_tick =
      !async_wal_ && wal_cfg.fsync == persist::FsyncPolicy::Interval;
  if (!async_wal_ && !idle_tick) return;
  persist::WalSyncer::Config cfg;
  cfg.backlog_frames = wal_cfg.fsync_every_n;
  cfg.deadline = wal_cfg.fsync_interval;
  cfg.clock = wal_cfg.clock;
  std::vector<persist::WalWriter*> writers;
  if (async_wal_) {
    writers.reserve(shards_.size());
    for (auto& shard : shards_) writers.push_back(&*shard->wal);
  } else {
    // Sync mode only needs the Interval idle tick folded into the same
    // maintenance thread; the writers keep syncing inline.
    cfg.tick = [this] { sync_wals_if_due(); };
  }
  syncer_.emplace(std::move(writers), std::move(cfg));
  syncer_->start();
}

void PredictionEngine::maybe_notify_syncer(Shard& shard) {
  if (!async_wal_) return;
  if (shard.wal->unsynced_appends() >= config_.durability.wal.fsync_every_n) {
    syncer_->notify();
  }
}

PredictionEngine::Shard& PredictionEngine::shard_of(const tsdb::SeriesKey& key) {
  return *shards_[std::hash<tsdb::SeriesKey>{}(key) % shards_.size()];
}

std::unique_lock<std::mutex> PredictionEngine::lock_shard(Shard& shard) {
  std::unique_lock lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: charge the blocked wait to the shard so the scaling bench
    // can tell lock contention from every other flattener.  The uncontended
    // path pays only the try_lock — no clock reads.
    const auto start = Clock::now();
    lock.lock();
    shard.lock_wait_nanos.fetch_add(nanos_since(start),
                                    std::memory_order_relaxed);
    shard.contended_locks.fetch_add(1, std::memory_order_relaxed);
  }
  return lock;
}

const PredictionEngine::Shard& PredictionEngine::shard_of(
    const tsdb::SeriesKey& key) const {
  return *shards_[std::hash<tsdb::SeriesKey>{}(key) % shards_.size()];
}

template <typename KeyOf, typename Fn>
void PredictionEngine::for_each_shard(std::size_t count, const KeyOf& key_of,
                                      const Fn& fn) {
  // Group batch indices by shard (preserving batch order within a shard),
  // then run one task per non-empty shard so each mutex is taken once.
  // The grouping buffers are thread-local so steady-state batches reuse
  // their capacity instead of allocating one vector per shard per call;
  // concurrent observe()/predict() callers each get their own scratch.
  thread_local std::vector<std::vector<std::size_t>> by_shard_tls;
  thread_local std::vector<std::size_t> active_tls;
  // Bind the caller thread's instances to ordinary references: a lambda does
  // not capture thread_local storage, so naming the TLS variables inside the
  // parallel_for body would resolve to each worker's own (empty) buffers.
  auto& by_shard = by_shard_tls;
  auto& active = active_tls;
  if (by_shard.size() < shards_.size()) by_shard.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) by_shard[s].clear();
  for (std::size_t i = 0; i < count; ++i) {
    by_shard[std::hash<tsdb::SeriesKey>{}(key_of(i)) % shards_.size()]
        .push_back(i);
  }
  active.clear();
  active.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }
  if (active.size() <= 1 || pool_.size() <= 1) {
    for (std::size_t s : active) fn(s, by_shard[s]);
    return;
  }
  pool_.parallel_for(0, active.size(), [&](std::size_t a) {
    fn(active[a], by_shard[active[a]]);
  });
}

void PredictionEngine::train_series(Shard& shard, const tsdb::SeriesKey& key,
                                    SeriesState& state, bool is_retrain) {
  const std::size_t take =
      std::min(state.history.size(), config_.train_samples);
  const std::vector<double> recent(state.history.end() - take,
                                   state.history.end());
  if (is_retrain) {
    state.predictor->retrain(recent);
    // Forget the audited records that triggered the order — including any
    // still-pending forecast the pre-retrain predictor issued — so the next
    // audit judges the re-trained predictor on fresh forecasts only.
    shard.predictions.prune_before(key, state.next_ts + 1);
    shard.retrains.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A predictor already present here is the fast tier reaching full
    // training depth: train() promotes the classifier in place (handoff).
    const bool handoff = state.predictor.has_value();
    if (!handoff) {
      state.predictor.emplace(pool_prototype_.clone(), config_.lar);
    }
    state.predictor->train(recent);
    if (handoff) {
      // Forget the cold tier's forecasts (including any still-pending one)
      // and restart the audit clock, so from here the series is in exactly
      // the state a never-fast engine reaches at its training step — the
      // forecast stream onward is bit-identical.
      shard.predictions.prune_before(key, state.next_ts + 1);
      state.since_audit = 0;
      shard.fast_count.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.trains.fetch_add(1, std::memory_order_relaxed);
    shard.trained_count.fetch_add(1, std::memory_order_relaxed);
  }
  state.retrain_requested = false;
}

void PredictionEngine::fast_train_series(Shard& shard, SeriesState& state) {
  const std::size_t take =
      std::min(state.history.size(), config_.train_samples);
  const std::vector<double> recent(state.history.end() - take,
                                   state.history.end());
  state.predictor.emplace(pool_prototype_.clone(), config_.lar);
  state.predictor->train_fast(recent);
  shard.fast_trains.fetch_add(1, std::memory_order_relaxed);
  shard.fast_count.fetch_add(1, std::memory_order_relaxed);
}

void PredictionEngine::absorb(Shard& shard, const tsdb::SeriesKey& key,
                              double value) {
  const auto [it, inserted] = shard.series.try_emplace(key);
  if (inserted) shard.series_count.fetch_add(1, std::memory_order_relaxed);
  SeriesState& state = it->second;

  // Resolve the forecast issued for this logical timestamp, if any.
  if (state.predictor) {
    if (const auto record = shard.predictions.find(key, state.next_ts);
        record && !record->resolved()) {
      shard.predictions.record_observation(key, state.next_ts, value);
      const double err = record->predicted - value;
      shard.resolved.fetch_add(1, std::memory_order_relaxed);
      shard.abs_error_sum.fetch_add(std::abs(err), std::memory_order_relaxed);
      shard.sq_error_sum.fetch_add(err * err, std::memory_order_relaxed);
    }
    state.predictor->observe(value);
  }

  state.history.push_back(value);
  while (state.history.size() > config_.history_capacity) {
    state.history.pop_front();
  }
  ++state.next_ts;

  // Lazy training once enough history has accumulated.
  if (!state.predictor && state.history.size() >= config_.train_samples) {
    train_series(shard, key, state, /*is_retrain=*/false);
    return;
  }

  // Cold-start tier: fast-train as soon as fast_train_samples have
  // accumulated, so the series serves O(1)-selected forecasts while the
  // full training window is still filling.
  if (!state.predictor && fast_tier_enabled() &&
      state.history.size() >= config_.fast_train_samples) {
    fast_train_series(shard, state);
    return;
  }

  // Handoff: a fast-serving series reaches full training depth — promote
  // the classifier (bit-identical to a never-fast engine from here on).
  if (state.predictor && state.predictor->serving_fast_tier() &&
      state.history.size() >= config_.train_samples) {
    train_series(shard, key, state, /*is_retrain=*/false);
    return;
  }

  // QA audit on cadence; a breach flags the series and we re-train from the
  // retained history right away.  The fast tier is exempt: QA judges the
  // promoted classifier only (the audit clock starts at handoff).
  if (state.predictor && !state.predictor->serving_fast_tier() &&
      config_.audit_every > 0 &&
      ++state.since_audit >= config_.audit_every) {
    state.since_audit = 0;
    // The lock-free mirror counts exactly what qa->audits_performed()
    // counts: audits with enough resolved records to judge.
    if (shard.qa->audit(key).audited) {
      shard.audits.fetch_add(1, std::memory_order_relaxed);
    }
    if (state.retrain_requested) {
      train_series(shard, key, state, /*is_retrain=*/true);
    }
  }
}

void PredictionEngine::observe_shard(Shard& shard,
                                     std::span<const Observation> batch,
                                     std::span<const std::size_t> indices) {
  if (shard.wal) {
    // Group commit: this (shard, batch) pair is staged and flushed with one
    // write + one sync decision, before any of the mutations it describes
    // is applied — log-before-apply at group granularity, op order
    // identical to apply order.  Compressed: ONE block frame for the whole
    // batch, weighted by its op count so fsync policies keep counting
    // records; legacy: one frame per op.
    if (config_.durability.compress_payloads) {
      shard.codec.begin_block(indices.size());
      for (std::size_t i : indices) {
        shard.codec.add_observe(batch[i].key, batch[i].value);
      }
      (void)shard.wal->stage(shard.codec.finish_block(), indices.size());
    } else {
      for (std::size_t i : indices) {
        wal_stage(shard, kWalObserve, batch[i].key, &batch[i].value);
      }
    }
    shard.wal->commit();
    maybe_notify_syncer(shard);
  }
  shard.observe_count.fetch_add(indices.size(), std::memory_order_relaxed);
  for (std::size_t i : indices) {
    absorb(shard, batch[i].key, batch[i].value);
  }
}

void PredictionEngine::observe(std::span<const Observation> batch) {
  if (config_.role == EngineRole::kFollower) {
    throw StateError(
        "follower engine: observe() must reach the leader — follower state "
        "mutates only through replication");
  }
  const auto start = Clock::now();
  if (batch.size() == 1) {
    // Direct dispatch: a single-sample call skips the grouping pass and the
    // thread-pool handoff entirely — one hash, one lock, one absorb.
    static constexpr std::size_t kZero[] = {0};
    Shard& shard = shard_of(batch[0].key);
    const auto lock = lock_shard(shard);
    observe_shard(shard, batch, kZero);
  } else {
    for_each_shard(
        batch.size(), [&](std::size_t i) -> const tsdb::SeriesKey& {
          return batch[i].key;
        },
        [&](std::size_t s, const std::vector<std::size_t>& indices) {
          Shard& shard = *shards_[s];
          const auto lock = lock_shard(shard);
          observe_shard(shard, batch, indices);
        });
  }
  observe_nanos_.fetch_add(nanos_since(start), std::memory_order_relaxed);
}

void PredictionEngine::observe(const tsdb::SeriesKey& key, double value) {
  const Observation one{key, value};
  observe(std::span<const Observation>(&one, 1));
}

Prediction PredictionEngine::peek_forecast(Shard& shard,
                                           const tsdb::SeriesKey& key) {
  const auto it = shard.series.find(key);
  if (it == shard.series.end() || !it->second.predictor) return Prediction{};
  const auto raw = it->second.predictor->peek_next();
  return Prediction{true, raw.value, raw.label, raw.uncertainty};
}

Prediction PredictionEngine::forecast(Shard& shard,
                                      const tsdb::SeriesKey& key) {
  const auto it = shard.series.find(key);
  if (it == shard.series.end() || !it->second.predictor) return Prediction{};
  SeriesState& state = it->second;
  const auto raw = state.predictor->predict_next();
  // Forecasts in the DB are immutable once issued; re-predicting the same
  // step keeps the first record (the predictor itself tracks only the
  // latest pending value for residuals).
  if (!shard.predictions.find(key, state.next_ts)) {
    shard.predictions.record_prediction(key, state.next_ts, raw.value,
                                        raw.label);
  }
  return Prediction{true, raw.value, raw.label, raw.uncertainty};
}

std::vector<Prediction> PredictionEngine::predict(
    std::span<const tsdb::SeriesKey> keys) {
  std::vector<Prediction> out;
  predict_into(keys, out);
  return out;
}

void PredictionEngine::predict_shard(Shard& shard,
                                     std::span<const tsdb::SeriesKey> keys,
                                     std::span<const std::size_t> indices,
                                     std::vector<Prediction>& out) {
  if (config_.role == EngineRole::kFollower) {
    // Follower reads are side-effect free: no WAL frame (the follower's log
    // must stay a byte copy of the leader's) and no prediction-DB record or
    // pending-forecast update (those replicate in via the leader's own
    // kWalPredict frames).
    shard.predict_count.fetch_add(indices.size(), std::memory_order_relaxed);
    for (std::size_t i : indices) {
      out[i] = peek_forecast(shard, keys[i]);
    }
    return;
  }
  if (shard.wal) {
    // Logged even for untrained series (where forecast() is a no-op):
    // replay must reproduce the exact call sequence, and whether a key
    // is trained at this point is itself a function of that sequence.
    // Staged and committed as one group, like observe().
    if (config_.durability.compress_payloads) {
      shard.codec.begin_block(indices.size());
      for (std::size_t i : indices) shard.codec.add_predict(keys[i]);
      (void)shard.wal->stage(shard.codec.finish_block(), indices.size());
    } else {
      for (std::size_t i : indices) {
        wal_stage(shard, kWalPredict, keys[i], nullptr);
      }
    }
    shard.wal->commit();
    maybe_notify_syncer(shard);
  }
  shard.predict_count.fetch_add(indices.size(), std::memory_order_relaxed);
  for (std::size_t i : indices) {
    out[i] = forecast(shard, keys[i]);
  }
}

void PredictionEngine::predict_into(std::span<const tsdb::SeriesKey> keys,
                                    std::vector<Prediction>& out) {
  check_freshness();
  const auto start = Clock::now();
  out.resize(keys.size());
  if (keys.size() == 1) {
    // Direct dispatch (see observe()): one hash, one lock, one forecast.
    static constexpr std::size_t kZero[] = {0};
    Shard& shard = shard_of(keys[0]);
    const auto lock = lock_shard(shard);
    predict_shard(shard, keys, kZero, out);
  } else {
    for_each_shard(
        keys.size(),
        [&](std::size_t i) -> const tsdb::SeriesKey& { return keys[i]; },
        [&](std::size_t s, const std::vector<std::size_t>& indices) {
          Shard& shard = *shards_[s];
          const auto lock = lock_shard(shard);
          predict_shard(shard, keys, indices, out);
        });
  }
  predict_nanos_.fetch_add(nanos_since(start), std::memory_order_relaxed);
}

Prediction PredictionEngine::predict(const tsdb::SeriesKey& key) {
  return predict(std::span<const tsdb::SeriesKey>(&key, 1)).front();
}

bool PredictionEngine::erase(const tsdb::SeriesKey& key) {
  if (config_.role == EngineRole::kFollower) {
    throw StateError(
        "follower engine: erase() must reach the leader — follower state "
        "mutates only through replication");
  }
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  wal_log(shard, kWalErase, key, nullptr);
  return erase_locked(shard, key);
}

bool PredictionEngine::erase_locked(Shard& shard, const tsdb::SeriesKey& key) {
  const auto it = shard.series.find(key);
  const bool removed = it != shard.series.end();
  if (removed) {
    if (it->second.predictor) {
      if (it->second.predictor->serving_fast_tier()) {
        shard.fast_count.fetch_sub(1, std::memory_order_relaxed);
      } else {
        shard.trained_count.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    shard.series.erase(it);
    shard.series_count.fetch_sub(1, std::memory_order_relaxed);
    shard.erases.fetch_add(1, std::memory_order_relaxed);
  }
  shard.predictions.erase_stream(key);
  return removed;
}

void PredictionEngine::wal_log(Shard& shard, std::uint8_t type,
                               const tsdb::SeriesKey& key, const double* value) {
  if (!shard.wal) return;
  if (config_.durability.compress_payloads) {
    shard.codec.begin_block(1);
    switch (type) {
      case kWalObserve:
        shard.codec.add_observe(key, *value);
        break;
      case kWalPredict:
        shard.codec.add_predict(key);
        break;
      default:
        shard.codec.add_erase(key);
        break;
    }
    (void)shard.wal->stage(shard.codec.finish_block(), 1);
  } else {
    wal_stage(shard, type, key, value);
  }
  shard.wal->commit();
  maybe_notify_syncer(shard);
}

void PredictionEngine::wal_stage(Shard& shard, std::uint8_t type,
                                 const tsdb::SeriesKey& key,
                                 const double* value) {
  auto& payload = shard.wal_payload;
  payload.clear();
  payload.u8(type);
  payload.str(key.vm_id);
  payload.str(key.device_id);
  payload.str(key.metric);
  if (value != nullptr) payload.f64(*value);
  shard.wal->stage(payload.bytes());
}

void PredictionEngine::sync_wals_if_due() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (shard->wal) (void)shard->wal->sync_if_due();
  }
}

void PredictionEngine::check_freshness() const {
  if (config_.role != EngineRole::kFollower) return;
  if (config_.max_staleness.count() <= 0) return;
  const std::uint64_t last =
      last_caught_up_nanos_.load(std::memory_order_relaxed);
  const auto bound = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config_.max_staleness)
          .count());
  if (last == 0 || now_nanos() - last > bound) {
    throw StaleRead(
        "follower predict: replication lag exceeds max_staleness");
  }
}

void PredictionEngine::replicate_frames(
    std::uint32_t shard_id, std::span<const ReplicatedFrame> frames) {
  if (config_.role != EngineRole::kFollower) {
    throw StateError("replicate_frames: engine is not a follower");
  }
  if (shard_id >= shards_.size()) {
    throw InvalidArgument("replicate_frames: shard id out of range");
  }
  if (frames.empty()) return;
  Shard& shard = *shards_[shard_id];
  const auto lock = lock_shard(shard);
  // Verify contiguity against the shard's position before any byte is
  // logged: a gap or rewind means the stream and this engine disagree about
  // history, and appending would fork the log.
  std::uint64_t expect =
      shard.wal ? shard.wal->next_seq()
                : shard.replicated_next.load(std::memory_order_relaxed);
  for (const auto& frame : frames) {
    if (frame.seq != expect) {
      throw StateError("replicate_frames: shard " + std::to_string(shard_id) +
                       " expected seq " + std::to_string(expect) + ", got " +
                       std::to_string(frame.seq));
    }
    ++expect;
  }
  if (shard.wal) {
    // Same log-before-apply group commit as the leader's own write path, so
    // a follower's directory recovers with the identical replay machinery.
    // Frames are staged at their true record weight (a compressed block
    // carries a whole batch) so the follower's sync backlog counts records
    // exactly like the leader's.
    for (const auto& frame : frames) {
      (void)shard.wal->stage(frame.payload,
                             WalPayloadCodec::payload_weight(frame.payload));
    }
    shard.wal->commit();
    maybe_notify_syncer(shard);
  }
  for (const auto& frame : frames) apply_wal_frame(shard, frame.payload);
  shard.replicated_next.store(expect, std::memory_order_relaxed);
  replicated_frames_.fetch_add(frames.size(), std::memory_order_relaxed);
}

std::vector<std::uint64_t> PredictionEngine::wal_positions() const {
  std::vector<std::uint64_t> positions(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::lock_guard lock(shard.mutex);
    positions[s] =
        shard.wal ? shard.wal->next_seq()
                  : shard.replicated_next.load(std::memory_order_relaxed);
  }
  return positions;
}

void PredictionEngine::note_caught_up() {
  last_caught_up_nanos_.store(now_nanos(), std::memory_order_relaxed);
}

void PredictionEngine::set_replication_floor(
    std::span<const std::uint64_t> positions) {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->retain_floor.store(
        s < positions.size() ? positions[s] : ~0ull,
        std::memory_order_relaxed);
  }
}

void PredictionEngine::save_shard(persist::io::Writer& w, Shard& shard,
                                  std::uint64_t& raw_bytes,
                                  std::uint64_t& encoded_bytes) const {
  // Accounting: `raw_repr` totals the bytes the compressed fields would
  // have cost in the raw v3 encoding; `comp_bytes` totals what their v4
  // representation (codec table included) actually costs.  The rest of the
  // section is identical in both layouts, so
  //   raw    = actual - comp_bytes + raw_repr
  //   actual = section bytes as written.
  const std::size_t section_start = w.size();
  std::uint64_t raw_repr = 0;
  std::uint64_t comp_bytes = 0;
  persist::codec::BlockWriter block;

  w.u64(shard.observe_count.load(std::memory_order_relaxed));
  w.u64(shard.predict_count.load(std::memory_order_relaxed));
  w.u64(shard.resolved.load(std::memory_order_relaxed));
  w.f64(shard.abs_error_sum.load(std::memory_order_relaxed));
  w.f64(shard.sq_error_sum.load(std::memory_order_relaxed));
  w.u64(shard.trains.load(std::memory_order_relaxed));
  w.u64(shard.fast_trains.load(std::memory_order_relaxed));
  w.u64(shard.retrains.load(std::memory_order_relaxed));
  w.u64(shard.erases.load(std::memory_order_relaxed));
  w.u64(shard.qa->audits_performed());
  w.u64(shard.qa->retrains_ordered());

  // v4: the WAL payload codec state at this shard's watermark cut — pure
  // overhead relative to v3, charged to the compressed side.
  {
    const std::size_t at = w.size();
    shard.codec.save(w);
    comp_bytes += w.size() - at;
  }

  w.u64(shard.series.size());
  std::vector<double> history_scratch;
  for (const auto& [key, state] : shard.series) {
    w.str(key.vm_id);
    w.str(key.device_id);
    w.str(key.metric);

    // History: XOR chain over the retained raw samples (fresh state per
    // block — snapshot blocks are self-contained, unlike the WAL chains).
    w.u64(state.history.size());
    history_scratch.assign(state.history.begin(), state.history.end());
    block.clear();
    persist::codec::encode_f64_block(block, history_scratch);
    {
      const auto bytes = block.bytes();
      const std::size_t at = w.size();
      w.u64(bytes.size());
      w.bytes(bytes);
      comp_bytes += w.size() - at;
      raw_repr += 8 * state.history.size();
    }

    w.i64(static_cast<std::int64_t>(state.next_ts));
    w.u64(state.since_audit);
    w.boolean(state.retrain_requested);
    w.boolean(state.predictor.has_value());
    if (state.predictor) state.predictor->save_state(w);

    // Prediction records: timestamps are near-consecutive (delta-of-delta),
    // predictions/observations are slowly varying doubles (XOR), labels are
    // tiny (uvarint) — interleaved per record in one bit stream.
    const auto records = shard.predictions.all_records(key);
    w.u64(records.size());
    block.clear();
    persist::codec::DodEncoder ts_enc;
    persist::codec::XorState predicted_state;
    persist::codec::XorState observed_state;
    for (const auto& [ts, record] : records) {
      ts_enc.put(block, static_cast<std::int64_t>(ts));
      persist::codec::XorEncoder::put(block, predicted_state,
                                      record.predicted);
      block.bit(record.observed.has_value());
      if (record.observed) {
        persist::codec::XorEncoder::put(block, observed_state,
                                        *record.observed);
      }
      block.uvarint(record.predictor_label);
      raw_repr += 8 + 8 + 1 + (record.observed ? 8 : 0) + 8;
    }
    {
      const auto bytes = block.bytes();
      const std::size_t at = w.size();
      w.u64(bytes.size());
      w.bytes(bytes);
      comp_bytes += w.size() - at;
    }
  }

  const std::uint64_t actual = w.size() - section_start;
  encoded_bytes += actual;
  raw_bytes += actual - comp_bytes + raw_repr;
}

std::uint64_t PredictionEngine::load_shard(persist::io::Reader& r, Shard& shard,
                                           std::uint32_t payload_version) {
  std::uint64_t watermark = 0;
  if (payload_version == 1) {
    watermark = r.u64();
  } else {
    shard.observe_count.store(static_cast<std::size_t>(r.u64()),
                              std::memory_order_relaxed);
    shard.predict_count.store(static_cast<std::size_t>(r.u64()),
                              std::memory_order_relaxed);
  }
  shard.resolved.store(static_cast<std::size_t>(r.u64()),
                       std::memory_order_relaxed);
  shard.abs_error_sum.store(r.f64(), std::memory_order_relaxed);
  shard.sq_error_sum.store(r.f64(), std::memory_order_relaxed);
  shard.trains.store(static_cast<std::size_t>(r.u64()),
                     std::memory_order_relaxed);
  if (payload_version >= 3) {
    shard.fast_trains.store(static_cast<std::size_t>(r.u64()),
                            std::memory_order_relaxed);
  }
  shard.retrains.store(static_cast<std::size_t>(r.u64()),
                       std::memory_order_relaxed);
  shard.erases.store(static_cast<std::size_t>(r.u64()),
                     std::memory_order_relaxed);
  const auto audits = static_cast<std::size_t>(r.u64());
  const auto qa_retrains = static_cast<std::size_t>(r.u64());
  shard.qa->restore_counters(audits, qa_retrains);
  shard.audits.store(audits, std::memory_order_relaxed);
  if (payload_version >= 4) {
    shard.codec.load(r);
  }
  const auto series_count =
      static_cast<std::size_t>(r.length(r.u64(), sizeof(std::uint64_t)));
  std::vector<double> history_scratch;
  for (std::size_t i = 0; i < series_count; ++i) {
    tsdb::SeriesKey key{r.str(), r.str(), r.str()};
    SeriesState& state = shard.series[key];
    if (payload_version >= 4) {
      const auto samples = static_cast<std::size_t>(r.length(r.u64(), 1));
      const auto block_bytes =
          static_cast<std::size_t>(r.length(r.u64(), 1));
      persist::codec::BlockReader block(r.bytes(block_bytes));
      history_scratch.clear();
      (void)persist::codec::decode_f64_block(block, samples, history_scratch);
      state.history.assign(history_scratch.begin(), history_scratch.end());
    } else {
      const auto samples =
          static_cast<std::size_t>(r.length(r.u64(), sizeof(double)));
      for (std::size_t j = 0; j < samples; ++j) {
        state.history.push_back(r.f64());
      }
    }
    state.next_ts = static_cast<Timestamp>(r.i64());
    state.since_audit = static_cast<std::size_t>(r.u64());
    state.retrain_requested = r.boolean();
    if (r.boolean()) {
      state.predictor.emplace(pool_prototype_.clone(), config_.lar);
      state.predictor->load_state(r);
    }
    if (payload_version >= 4) {
      const auto records = static_cast<std::size_t>(r.length(r.u64(), 1));
      const auto block_bytes =
          static_cast<std::size_t>(r.length(r.u64(), 1));
      persist::codec::BlockReader block(r.bytes(block_bytes));
      persist::codec::DodDecoder ts_dec;
      persist::codec::XorState predicted_state;
      persist::codec::XorState observed_state;
      for (std::size_t j = 0; j < records; ++j) {
        const auto ts = static_cast<Timestamp>(ts_dec.get(block));
        tsdb::PredictionRecord record;
        record.predicted =
            persist::codec::XorDecoder::get(block, predicted_state);
        if (block.bit()) {
          record.observed =
              persist::codec::XorDecoder::get(block, observed_state);
        }
        record.predictor_label = static_cast<std::size_t>(block.uvarint());
        shard.predictions.restore_record(key, ts, record);
      }
    } else {
      const auto records =
          static_cast<std::size_t>(r.length(r.u64(), sizeof(std::uint64_t)));
      for (std::size_t j = 0; j < records; ++j) {
        const auto ts = static_cast<Timestamp>(r.i64());
        tsdb::PredictionRecord record;
        record.predicted = r.f64();
        if (r.boolean()) record.observed = r.f64();
        record.predictor_label = static_cast<std::size_t>(r.u64());
        shard.predictions.restore_record(key, ts, record);
      }
    }
  }
  // Re-seed the lock-free stats() mirrors from the restored series map.
  std::size_t trained = 0;
  std::size_t fast = 0;
  for (const auto& [key, state] : shard.series) {
    if (!state.predictor) continue;
    if (state.predictor->serving_fast_tier()) {
      ++fast;
    } else {
      ++trained;
    }
  }
  shard.series_count.store(shard.series.size(), std::memory_order_relaxed);
  shard.trained_count.store(trained, std::memory_order_relaxed);
  shard.fast_count.store(fast, std::memory_order_relaxed);
  return watermark;
}

std::uint64_t PredictionEngine::snapshot(const std::filesystem::path& dir) {
  // Incremental, not stop-the-world: each shard is serialized into the
  // staging buffer under its OWN mutex, one at a time, so concurrent
  // observe/predict traffic only ever waits for the single shard currently
  // being copied.  Consistency holds per shard, not engine-wide: each
  // section flushes its shard's WAL and records that shard's watermark (the
  // log must be durable up to the cut BEFORE the snapshot can claim it),
  // and restore() replays each shard's WAL from its own watermark — shard
  // state and replay cut always agree even though the sections were taken
  // at different instants.
  persist::io::Writer body;
  std::vector<std::uint64_t> watermarks(shards_.size(), 0);
  std::vector<std::uint64_t> raw_bytes(shards_.size(), 0);
  std::vector<std::uint64_t> encoded_bytes(shards_.size(), 0);
  std::uint64_t max_pause_nanos = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const auto locked_at = Clock::now();
    std::lock_guard lock(shard.mutex);
    if (shard.wal) {
      watermarks[s] = shard.wal->flush();
    }
    save_shard(body, shard, raw_bytes[s], encoded_bytes[s]);
    max_pause_nanos = std::max(max_pause_nanos, nanos_since(locked_at));
  }

  // Assemble the published payload: the watermark table travels up front
  // (restore must know every shard's replay cut before the sections), the
  // v4 byte-accounting table follows it (what each section would have cost
  // raw vs what it actually cost — read by `larp_cli inspect-snapshot` and
  // the durability bench without deserializing the sections), the staged
  // sections close the payload verbatim.
  persist::io::Writer w;
  w.u32(kEnginePayloadVersion);
  save_engine_config(w, config_);
  w.u64(shards_.size());
  for (std::uint64_t watermark : watermarks) w.u64(watermark);
  w.u64(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    w.u64(raw_bytes[s]);
    w.u64(encoded_bytes[s]);
  }
  w.bytes(body.bytes());

  const auto existing = persist::list_snapshots(dir);
  const std::uint64_t epoch = existing.empty() ? 1 : existing.back().epoch + 1;
  persist::publish_snapshot(dir, epoch, w.bytes());
  persist::retain_snapshots(
      dir, std::max<std::size_t>(1, config_.durability.keep_snapshots));
  if (dir == config_.durability.data_dir) {
    // Frames below the watermark are now covered by this snapshot on every
    // recovery path, so whole segments beneath it can go — except frames a
    // connected replication follower still needs (retain_floor holds the
    // lowest position any follower has yet to acknowledge).
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      std::lock_guard lock(shard.mutex);
      if (shard.wal) {
        shard.wal->prune_below(std::min(
            watermarks[s],
            shard.retain_floor.load(std::memory_order_relaxed)));
      }
    }
  }
  snapshot_pause_nanos_.store(max_pause_nanos, std::memory_order_relaxed);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return epoch;
}

std::uint64_t PredictionEngine::snapshot() {
  if (config_.durability.data_dir.empty()) {
    throw StateError("PredictionEngine::snapshot: durability is not configured");
  }
  return snapshot(config_.durability.data_dir);
}

void PredictionEngine::apply_wal_frame(Shard& shard,
                                       std::span<const std::byte> payload) {
  if (WalPayloadCodec::is_block(payload)) {
    shard.codec.decode_block(payload, [&](const WalOp& op) {
      apply_op(shard, op.type, *op.key, op.value);
    });
    return;
  }
  persist::io::Reader r{payload};
  const std::uint8_t type = r.u8();
  tsdb::SeriesKey key{r.str(), r.str(), r.str()};
  const double value = type == kWalObserve ? r.f64() : 0.0;
  apply_op(shard, type, key, value);
}

void PredictionEngine::apply_op(Shard& shard, std::uint8_t type,
                                const tsdb::SeriesKey& key, double value) {
  switch (type) {
    case kWalObserve:
      shard.observe_count.fetch_add(1, std::memory_order_relaxed);
      absorb(shard, key, value);
      break;
    case kWalPredict:
      shard.predict_count.fetch_add(1, std::memory_order_relaxed);
      (void)forecast(shard, key);
      break;
    case kWalErase:
      (void)erase_locked(shard, key);
      break;
    default:
      throw persist::CorruptData("wal frame: unknown type " +
                                 std::to_string(type));
  }
}

std::unique_ptr<PredictionEngine> PredictionEngine::restore(
    predictors::PredictorPool pool_prototype, const std::filesystem::path& dir,
    std::optional<EngineConfig> config_override) {
  auto loaded = persist::load_newest_valid(dir);

  EngineConfig config = config_override.value_or(EngineConfig{});
  std::optional<persist::io::Reader> reader;
  std::uint32_t payload_version = kEnginePayloadVersion;
  if (loaded) {
    reader.emplace(std::span<const std::byte>(loaded->payload));
    payload_version = reader->u32();
    if (payload_version == 0 || payload_version > kEnginePayloadVersion) {
      throw persist::CorruptData("engine snapshot: unsupported payload version " +
                                 std::to_string(payload_version));
    }
    // Identity-defining fields come from the snapshot; the override only
    // contributes runtime knobs (threads + durability tuning, read below).
    load_engine_config(*reader, config, payload_version);
  }
  DurabilityConfig durability = config.durability;
  durability.data_dir = dir;

  // Boot with durability off: the WAL writers open only after replay, at the
  // sequence position recovery establishes.
  EngineConfig boot = config;
  boot.durability = DurabilityConfig{};
  auto engine = std::make_unique<PredictionEngine>(std::move(pool_prototype),
                                                   std::move(boot));

  std::vector<std::uint64_t> watermarks(engine->shards_.size(), 0);
  if (loaded) {
    if (payload_version == 1) {
      // v1 compat: the engine-global traffic counters land on shard 0, so
      // every stats() aggregate a v1 snapshot recorded is preserved; the
      // per-shard watermarks come from the section heads below.
      engine->shards_[0]->observe_count.store(
          static_cast<std::size_t>(reader->u64()), std::memory_order_relaxed);
      engine->shards_[0]->predict_count.store(
          static_cast<std::size_t>(reader->u64()), std::memory_order_relaxed);
    } else {
      const auto table_shards = static_cast<std::size_t>(
          reader->length(reader->u64(), sizeof(std::uint64_t)));
      if (table_shards != engine->shards_.size()) {
        throw persist::CorruptData(
            "engine snapshot: watermark table size disagrees with the shard "
            "count");
      }
      for (std::size_t s = 0; s < table_shards; ++s) {
        watermarks[s] = reader->u64();
      }
    }
    if (payload_version >= 4) {
      // The byte-accounting table is advisory (inspect/bench only) — restore
      // just walks past it, but still validates the shape so a truncated
      // payload fails loudly here instead of mid-section.
      const auto table_shards = static_cast<std::size_t>(
          reader->length(reader->u64(), 2 * sizeof(std::uint64_t)));
      if (table_shards != engine->shards_.size()) {
        throw persist::CorruptData(
            "engine snapshot: accounting table size disagrees with the shard "
            "count");
      }
      for (std::size_t s = 0; s < table_shards; ++s) {
        (void)reader->u64();  // raw bytes
        (void)reader->u64();  // encoded bytes
      }
    }
    for (std::size_t s = 0; s < engine->shards_.size(); ++s) {
      const std::uint64_t v1_mark =
          engine->load_shard(*reader, *engine->shards_[s], payload_version);
      if (payload_version == 1) watermarks[s] = v1_mark;
    }
  }

  persist::ensure_directory(dir);
  // The shard count is identity-defining but a WAL-only directory cannot
  // carry it (it travels in the snapshot).  Replaying under a different
  // count would silently strand every frame in the orphaned logs — or
  // scatter series across a different hash partition — so refuse loudly
  // before touching anything.  Shard logs are contiguous from 0: every
  // shard opens its segment file the moment the engine boots.
  std::size_t wal_shards = 0;
  while (!persist::list_wal_segments(
              dir, static_cast<std::uint32_t>(wal_shards))
              .empty()) {
    ++wal_shards;
  }
  if (wal_shards != 0 && wal_shards != engine->shards_.size()) {
    throw persist::CorruptData(
        "engine restore: directory holds WAL logs for " +
        std::to_string(wal_shards) + " shards but the engine is configured "
        "with " + std::to_string(engine->shards_.size()) +
        " — pass the EngineConfig the logs were written under");
  }
  for (std::size_t s = 0; s < engine->shards_.size(); ++s) {
    Shard& shard = *engine->shards_[s];
    std::lock_guard lock(shard.mutex);
    const auto report = persist::replay_wal(
        dir, static_cast<std::uint32_t>(s), watermarks[s],
        [&](const persist::WalFrame& frame) {
          engine->apply_wal_frame(shard, frame.payload);
        });
    // The writer resumes after the last frame actually applied; max() covers
    // a log that lags the snapshot (e.g. segments pruned or lost wholesale).
    const std::uint64_t next = std::max(watermarks[s], report.next_seq);
    if (report.truncated_tail) {
      // A torn or corrupt suffix was skipped — physically discard it so the
      // on-disk log agrees with the state we restored.
      persist::repair_wal(dir, static_cast<std::uint32_t>(s), next);
    }
    shard.wal.emplace(dir, static_cast<std::uint32_t>(s), durability.wal, next);
  }
  engine->config_.durability = std::move(durability);
  engine->start_syncer();
  LARP_LOG_INFO("serve") << "PredictionEngine: restored from " << dir.string()
                         << (loaded ? " (snapshot epoch " +
                                          std::to_string(loaded->epoch) + ")"
                                    : " (no snapshot, WAL only)");
  return engine;
}

PredictionEngine::SnapshotDescription PredictionEngine::describe_payload(
    std::span<const std::byte> payload) {
  persist::io::Reader r{payload};
  SnapshotDescription d;
  d.payload_version = r.u32();
  if (d.payload_version == 0 || d.payload_version > kEnginePayloadVersion) {
    throw persist::CorruptData("engine snapshot: unsupported payload version " +
                               std::to_string(d.payload_version));
  }
  EngineConfig config;
  load_engine_config(r, config, d.payload_version);
  d.shards = config.shards;
  if (d.payload_version >= 2) {
    const auto table_shards = static_cast<std::size_t>(
        r.length(r.u64(), sizeof(std::uint64_t)));
    if (table_shards != d.shards) {
      throw persist::CorruptData(
          "engine snapshot: watermark table size disagrees with the shard "
          "count");
    }
    for (std::size_t s = 0; s < table_shards; ++s) {
      d.watermarks.push_back(r.u64());
    }
  }
  if (d.payload_version >= 4) {
    const auto table_shards = static_cast<std::size_t>(
        r.length(r.u64(), 2 * sizeof(std::uint64_t)));
    if (table_shards != d.shards) {
      throw persist::CorruptData(
          "engine snapshot: accounting table size disagrees with the shard "
          "count");
    }
    for (std::size_t s = 0; s < table_shards; ++s) {
      d.raw_bytes.push_back(r.u64());
      d.encoded_bytes.push_back(r.u64());
    }
  }
  return d;
}

std::size_t PredictionEngine::series_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    count += shard->series_count.load(std::memory_order_relaxed);
  }
  return count;
}

bool PredictionEngine::is_trained(const tsdb::SeriesKey& key) const {
  const Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.series.find(key);
  return it != shard.series.end() && it->second.predictor.has_value() &&
         !it->second.predictor->serving_fast_tier();
}

bool PredictionEngine::is_fast_serving(const tsdb::SeriesKey& key) const {
  const Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.series.find(key);
  return it != shard.series.end() && it->second.predictor.has_value() &&
         it->second.predictor->serving_fast_tier();
}

EngineStats PredictionEngine::stats() const {
  // Lock-free by design: every addend below is either a relaxed atomic
  // mirror maintained under the shard mutex or an internally-synchronized
  // WAL watermark read, so a monitoring poll never blocks (or is blocked
  // by) the serving hot path.
  EngineStats stats;
  std::uint64_t lock_wait_nanos = 0;
  for (const auto& shard : shards_) {
    stats.series += shard->series_count.load(std::memory_order_relaxed);
    stats.trained_series +=
        shard->trained_count.load(std::memory_order_relaxed);
    stats.trains += shard->trains.load(std::memory_order_relaxed);
    stats.fast_trains += shard->fast_trains.load(std::memory_order_relaxed);
    stats.fast_serving += shard->fast_count.load(std::memory_order_relaxed);
    stats.retrains += shard->retrains.load(std::memory_order_relaxed);
    stats.erases += shard->erases.load(std::memory_order_relaxed);
    stats.audits += shard->audits.load(std::memory_order_relaxed);
    stats.resolved += shard->resolved.load(std::memory_order_relaxed);
    stats.mean_absolute_error +=
        shard->abs_error_sum.load(std::memory_order_relaxed);
    stats.mean_squared_error +=
        shard->sq_error_sum.load(std::memory_order_relaxed);
    stats.observations += shard->observe_count.load(std::memory_order_relaxed);
    stats.predictions += shard->predict_count.load(std::memory_order_relaxed);
    stats.contended_locks +=
        shard->contended_locks.load(std::memory_order_relaxed);
    lock_wait_nanos += shard->lock_wait_nanos.load(std::memory_order_relaxed);
    if (shard->wal) stats.wal_unsynced_frames += shard->wal->unsynced_appends();
  }
  stats.lock_wait_seconds = static_cast<double>(lock_wait_nanos) * 1e-9;
  if (stats.resolved > 0) {
    stats.mean_absolute_error /= static_cast<double>(stats.resolved);
    stats.mean_squared_error /= static_cast<double>(stats.resolved);
  }
  stats.observe_seconds =
      static_cast<double>(observe_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  stats.predict_seconds =
      static_cast<double>(predict_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  stats.wal_background_syncs = syncer_ ? syncer_->syncs_performed() : 0;
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.snapshot_max_pause_seconds =
      static_cast<double>(snapshot_pause_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  stats.replicated_frames =
      replicated_frames_.load(std::memory_order_relaxed);
  if (config_.role == EngineRole::kFollower) {
    const std::uint64_t last =
        last_caught_up_nanos_.load(std::memory_order_relaxed);
    stats.replication_lag_seconds =
        last == 0 ? std::numeric_limits<double>::infinity()
                  : static_cast<double>(now_nanos() - last) * 1e-9;
    const double bound =
        static_cast<double>(config_.max_staleness.count()) * 1e-3;
    stats.replication_fresh =
        config_.max_staleness.count() <= 0 ||
        stats.replication_lag_seconds <= bound;
  }
  return stats;
}

}  // namespace larp::serve
