// PredictionEngine: the production serving layer over core::LarPredictor —
// thousands of concurrent (host, resource) series behind one batched API.
//
// Architecture:
//   * series are hash-partitioned into shards; each shard owns its series
//     map, a tsdb::PredictionDatabase, and a qa::QualityAssuror, all guarded
//     by one shard mutex — so two series in different shards never contend;
//   * observe(batch) / predict(batch) group the batch by shard and fan the
//     per-shard work across a ThreadPool::parallel_for, taking each shard's
//     mutex exactly once per batch;
//   * per-series lifecycle is lazy: a series trains itself after
//     EngineConfig::train_samples observations, and the Quality Assuror's
//     audit (every audit_every observations) can order a re-train from the
//     series' retained raw history (§3.2 of the paper, scaled out);
//   * aggregate accuracy (resolved-forecast MAE/MSE) and latency counters
//     are maintained per shard / atomically and snapshot by stats().
//
// Locking contract: LarPredictor is not internally synchronized (see
// core/lar_predictor.hpp); every touch of a predictor happens under its
// shard's mutex.  Keys within one batch are processed in batch order per
// shard, so per-series results are deterministic and independent of the
// thread count — the tests assert engine output identical to a standalone
// LarPredictor fed the same stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/lar_predictor.hpp"
#include "persist/io.hpp"
#include "persist/wal.hpp"
#include "persist/wal_syncer.hpp"
#include "qa/quality_assuror.hpp"
#include "serve/wal_codec.hpp"
#include "tsdb/prediction_db.hpp"
#include "util/thread_pool.hpp"

namespace larp::serve {

/// Durability knobs.  Durability is OFF while data_dir is empty: no WAL is
/// opened and the observe/predict hot paths stay allocation-free as before.
struct DurabilityConfig {
  /// Directory holding the snapshots and per-shard WAL segments.
  std::filesystem::path data_dir;
  /// Per-shard write-ahead-log tuning (segment size, fsync policy, and
  /// wal.mode: DurabilityMode::Sync runs the fsync policy inline on the
  /// serving threads; DurabilityMode::Async moves every EveryN/Interval
  /// fdatasync onto the engine's background WalSyncer — fsync_every_n
  /// becomes the syncer's backlog trigger and fsync_interval its deadline).
  persist::WalConfig wal;
  /// Validating snapshots retained by snapshot(); older ones are deleted.
  std::size_t keep_snapshots = 2;
  /// Gorilla-compressed WAL payloads (DESIGN.md §11): every batched call
  /// stages ONE block frame per shard (delta-of-delta/XOR bit packing over
  /// a persistent key dictionary) instead of one raw frame per op.  Off =
  /// the legacy per-op frames, byte-identical to what pre-v4 engines wrote;
  /// both formats replay regardless of this knob (payloads self-identify),
  /// so it can be toggled across restarts.  Runtime knob, never serialized.
  bool compress_payloads = true;
};

/// Replication role.  A follower's state mutates ONLY through
/// replicate_frames() — local observe()/erase() throw StateError — so its
/// WAL is a byte-for-byte copy of the leader's and its per-shard positions
/// are directly comparable to the leader's.  Follower predict() runs the
/// read-only peek path (no prediction-DB record, no WAL frame) gated by
/// max_staleness.
enum class EngineRole : std::uint8_t { kLeader, kFollower };

/// Thrown by a follower's predict() when the engine has not been marked
/// caught-up (note_caught_up()) within EngineConfig::max_staleness.  The
/// network front-end answers it with a typed kStale error reply so clients
/// fail over to the leader instead of acting on possibly-wrong data.
class StaleRead : public Error {
 public:
  using Error::Error;
};

/// One WAL frame shipped from a leader, applied via replicate_frames().
/// `payload` is the engine WAL frame payload (post-seq bytes), verbatim.
struct ReplicatedFrame {
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;
};

struct EngineConfig {
  core::LarConfig lar;
  qa::QaConfig quality;
  /// Hash partitions; more shards = less cross-series contention.
  std::size_t shards = 8;
  /// Worker threads backing the batched calls (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Observations before a series lazily trains itself, and the number of
  /// recent samples a QA-ordered re-train uses.
  std::size_t train_samples = 144;
  /// Cold-start tier (DESIGN.md §10): with lar.fast_tier configured and this
  /// non-zero, a series fast-trains after this many observations and serves
  /// O(1)-selected forecasts until train_samples arrive, when the full
  /// training pass promotes the classifier (bit-identical to a never-fast
  /// engine from the handoff on).  0 = off.  Must be at least
  /// lar.window + 2 and below train_samples when enabled.
  std::size_t fast_train_samples = 0;
  /// Raw samples retained per series (clamped up to train_samples).
  std::size_t history_capacity = 288;
  /// One QA audit per series every this many observations (0 = never).
  std::size_t audit_every = 24;
  /// Snapshot + write-ahead-log durability (off by default).
  DurabilityConfig durability;
  /// Replication role (see EngineRole).  Runtime knob, never serialized.
  EngineRole role = EngineRole::kLeader;
  /// Follower read bound: predict() throws StaleRead when the last
  /// note_caught_up() is further back than this.  Zero = no bound (reads are
  /// served regardless of lag).  Ignored on a leader.
  std::chrono::milliseconds max_staleness{0};
};

/// One incoming raw sample of a series.
struct Observation {
  tsdb::SeriesKey key;
  double value = 0.0;
};

/// One engine forecast.  `ready` is false while the series is still
/// accumulating its training window (value/uncertainty are NaN then).
struct Prediction {
  bool ready = false;
  double value = std::numeric_limits<double>::quiet_NaN();
  std::size_t label = 0;
  double uncertainty = std::numeric_limits<double>::quiet_NaN();
};

/// Aggregate counters across all shards (stats() snapshot).
struct EngineStats {
  std::size_t series = 0;            // series ever observed
  std::size_t trained_series = 0;    // series past lazy training
  std::size_t observations = 0;      // samples absorbed
  std::size_t predictions = 0;       // forecasts issued
  std::size_t trains = 0;            // lazy (full) trainings performed
  std::size_t fast_trains = 0;       // cold-tier fast trainings performed
  std::size_t fast_serving = 0;      // series currently serving from the tier
  std::size_t retrains = 0;          // QA-ordered re-trains
  std::size_t audits = 0;            // QA audits run
  std::size_t erases = 0;            // series torn down via erase()
  std::size_t resolved = 0;          // forecasts resolved by an observation
  double mean_absolute_error = 0.0;  // over resolved forecasts (raw units)
  double mean_squared_error = 0.0;   // over resolved forecasts (raw units)
  double observe_seconds = 0.0;      // cumulative wall time in observe()
  double predict_seconds = 0.0;      // cumulative wall time in predict()
  std::size_t wal_unsynced_frames = 0;  // published, not yet fdatasync'd
  std::size_t wal_background_syncs = 0; // fdatasyncs issued by the WalSyncer
  std::size_t snapshots = 0;            // snapshot() calls completed
  /// Shard-mutex contention on the batched hot paths: acquisitions that did
  /// not take the lock on the first try, and the wall time spent blocked in
  /// those acquisitions.  The scaling bench reads these to name the
  /// flattener when the throughput curve goes flat.
  std::size_t contended_locks = 0;
  double lock_wait_seconds = 0.0;
  /// Longest single-shard lock hold of the most recent snapshot() — the
  /// serving pause an incremental snapshot actually causes (the engine-wide
  /// stop-the-world pause it replaced was the sum over all shards).
  double snapshot_max_pause_seconds = 0.0;
  /// Follower lag gauges (leader engines report 0 / fresh=true).
  std::size_t replicated_frames = 0;  // WAL frames applied via replication
  /// Seconds since the follower last confirmed it was caught up with the
  /// leader (note_caught_up()); infinity until the first confirmation.
  double replication_lag_seconds = 0.0;
  /// Whether predict() would currently be served (lag within max_staleness).
  bool replication_fresh = true;
};

class PredictionEngine {
 public:
  /// Takes the expert-pool prototype every series' predictor clones.
  /// Throws InvalidArgument for zero shards or an empty pool.
  PredictionEngine(predictors::PredictorPool pool_prototype,
                   EngineConfig config);

  /// Syncs any open WAL, then joins the worker pool; no batched call may be
  /// in flight.
  ~PredictionEngine();

  PredictionEngine(const PredictionEngine&) = delete;
  PredictionEngine& operator=(const PredictionEngine&) = delete;

  /// Rebuilds an engine from `dir`: the newest valid snapshot (if any) is
  /// loaded and every per-shard WAL is replayed past the snapshot's
  /// watermark, so the result continues the forecast sequence bit-for-bit
  /// where the original crashed.  Corrupt snapshots fall back to the
  /// previous valid one; a torn or corrupt WAL suffix is discarded.  The
  /// identity-defining configuration (lar, quality, shards, training
  /// cadence) always comes from the snapshot; `config_override` contributes
  /// only the runtime knobs (threads, durability tuning).  The restored
  /// engine logs onward into `dir`.
  static std::unique_ptr<PredictionEngine> restore(
      predictors::PredictorPool pool_prototype,
      const std::filesystem::path& dir,
      std::optional<EngineConfig> config_override = std::nullopt);

  /// Absorbs a batch of raw samples, fanned across shards.  Per series (in
  /// batch order): resolve the pending forecast, feed the predictor (or
  /// train it once train_samples have accumulated), and audit on cadence.
  void observe(std::span<const Observation> batch);
  void observe(const tsdb::SeriesKey& key, double value);

  /// One forecast per requested key, in request order.  Forecasts are
  /// recorded in the shard's prediction DB and resolved by the series' next
  /// observation.
  [[nodiscard]] std::vector<Prediction> predict(
      std::span<const tsdb::SeriesKey> keys);
  [[nodiscard]] Prediction predict(const tsdb::SeriesKey& key);

  /// predict() into a caller-owned buffer (resized to keys.size()).  The
  /// network request path reuses one buffer per connection so steady-state
  /// serving allocates nothing here.
  void predict_into(std::span<const tsdb::SeriesKey> keys,
                    std::vector<Prediction>& out);

  /// Tears down one series: its state, predictor, and prediction-DB stream
  /// are dropped (and the teardown is WAL-logged when durability is on).
  /// Returns false when the key was never observed.
  bool erase(const tsdb::SeriesKey& key);

  /// Writes one atomic, checksummed snapshot of the full engine state into
  /// `dir` — incrementally: shards are serialized one at a time under their
  /// own mutex (each section flushes that shard's WAL and records its
  /// watermark), so the serving pause is bounded by the largest single
  /// shard instead of the whole engine; see EngineStats::
  /// snapshot_max_pause_seconds.  The combined file is still published
  /// atomically.  When `dir` is the configured data_dir, WAL segments made
  /// obsolete by the new snapshot are pruned.  Returns the snapshot's epoch.
  std::uint64_t snapshot(const std::filesystem::path& dir);
  /// snapshot() into the configured durability data_dir.
  std::uint64_t snapshot();

  /// Durability maintenance tick: applies any due Interval-policy fsync on
  /// every shard's WAL, so an idle writer's loss window stays bounded by
  /// `fsync_interval` instead of stretching until its next append.  Cheap
  /// no-op when durability is off or another policy is configured.  The
  /// engine's own WalSyncer thread drives this automatically (callers no
  /// longer need a manual tick); it stays public for tests and embedders
  /// without threads.
  void sync_wals_if_due();

  /// Cheap structural description of an engine snapshot payload (no engine
  /// construction, no predictor state parsed): payload version, per-shard
  /// WAL watermarks (v2+), and the raw-vs-encoded storage accounting the v4
  /// writer embeds — what `larp_cli inspect-snapshot` prints so compression
  /// ratios are observable in production without a bench run.
  struct SnapshotDescription {
    std::uint32_t payload_version = 0;
    std::uint64_t shards = 0;
    std::vector<std::uint64_t> watermarks;        // empty below v2
    std::vector<std::uint64_t> raw_bytes;         // empty below v4
    std::vector<std::uint64_t> encoded_bytes;     // empty below v4
  };
  [[nodiscard]] static SnapshotDescription describe_payload(
      std::span<const std::byte> payload);

  [[nodiscard]] std::size_t series_count() const;
  /// True once the series is FULLY trained (classifier serving); a series
  /// still on the fast tier reports false — see is_fast_serving().
  [[nodiscard]] bool is_trained(const tsdb::SeriesKey& key) const;
  /// True while the series serves forecasts from the O(1) fast tier
  /// (fast-trained, full training pending).
  [[nodiscard]] bool is_fast_serving(const tsdb::SeriesKey& key) const;
  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }

  // -- replication ----------------------------------------------------------

  /// Follower only: applies one contiguous run of leader WAL frames to shard
  /// `shard_id`.  Frames are WAL-logged locally (when durability is on) and
  /// applied in order, exactly like the leader's own log-before-apply — so a
  /// follower's directory restores and resumes like a leader's.  Each
  /// frame's seq must equal the shard's current position; a gap or rewind
  /// throws StateError (the replication client must re-resume or
  /// re-bootstrap rather than fork the log).
  void replicate_frames(std::uint32_t shard_id,
                        std::span<const ReplicatedFrame> frames);

  /// Per-shard log positions: the next WAL seq each shard would assign
  /// (leader), or the next seq a follower expects to replicate.  Positions
  /// are comparable across a leader/follower pair because follower state
  /// mutates only through replicate_frames().
  [[nodiscard]] std::vector<std::uint64_t> wal_positions() const;

  /// Follower only: records "as of now, this engine had applied everything
  /// the leader had published" — the staleness clock predict() checks.
  /// Called by the replication client when a heartbeat confirms its applied
  /// positions cover the leader's.
  void note_caught_up();

  /// Leader only: holds WAL pruning so every shard retains frames from
  /// `positions[shard]` on, letting a connected follower resume after the
  /// next snapshot.  An empty span clears the floor (prune by snapshot
  /// watermark alone).
  void set_replication_floor(std::span<const std::uint64_t> positions);

 private:
  struct SeriesState {
    std::deque<double> history;  // recent raw samples, capacity-bounded
    std::optional<core::LarPredictor> predictor;
    Timestamp next_ts = 0;  // logical clock: index of the next sample
    std::size_t since_audit = 0;
    bool retrain_requested = false;
  };

  // Cache-line aligned so that when shards sit adjacently in memory, one
  // shard's mutex and hot counters never share a line with a neighbour's —
  // batched observe/predict takes the shard mutexes from different worker
  // threads concurrently, and false sharing there serializes the shards.
  //
  // Counter discipline: the aggregate counters below are relaxed atomics,
  // written only under the shard mutex (so snapshot sections stay
  // self-consistent) but READ lock-free — stats() folds them across shards
  // without touching any mutex, so a monitoring poll never contends with
  // the serving hot path.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<tsdb::SeriesKey, SeriesState> series;
    tsdb::PredictionDatabase predictions;
    std::optional<qa::QualityAssuror> qa;
    // Aggregate accuracy over resolved forecasts (raw units).
    std::atomic<std::size_t> resolved{0};
    std::atomic<double> abs_error_sum{0.0};
    std::atomic<double> sq_error_sum{0.0};
    std::atomic<std::size_t> trains{0};
    std::atomic<std::size_t> fast_trains{0};
    std::atomic<std::size_t> retrains{0};
    std::atomic<std::size_t> erases{0};
    std::atomic<std::size_t> audits{0};
    // series.size() / predictor-count mirrors, so stats() needs no lock.
    std::atomic<std::size_t> series_count{0};
    std::atomic<std::size_t> trained_count{0};
    std::atomic<std::size_t> fast_count{0};  // series on the fast tier
    // Traffic counters live per shard (not in engine-level atomics) so each
    // shard's snapshot section is self-consistent: an incremental snapshot
    // cuts shard s at its own watermark, and counters shared across shards
    // could not be attributed to any single cut.
    std::atomic<std::size_t> observe_count{0};
    std::atomic<std::size_t> predict_count{0};
    // Hot-path lock contention (fed by lock_shard's slow path).
    std::atomic<std::uint64_t> lock_wait_nanos{0};
    std::atomic<std::size_t> contended_locks{0};
    // Durability (engaged only when DurabilityConfig::data_dir is set).
    // The payload writer is reused across frames, so steady-state WAL
    // appends allocate nothing once capacities are established.
    std::optional<persist::WalWriter> wal;
    persist::io::Writer wal_payload;
    // Compressed-payload state machine (dictionary + per-series XOR
    // chains), advanced at stage time by the write path and at decode time
    // by replay/replication; persisted in the v4 snapshot at the shard's
    // watermark cut.  Mutated only under the shard mutex.
    WalPayloadCodec codec;
    // Replication position when no WAL backs this shard (an in-memory
    // follower): next seq replicate_frames() expects.  With a WAL the
    // writer's own next_seq() is authoritative.
    std::atomic<std::uint64_t> replicated_next{0};
    // Leader-side prune floor: the lowest position any follower still needs
    // (kNoFloor = unconstrained).  Written by set_replication_floor(), read
    // by snapshot()'s pruning pass.
    std::atomic<std::uint64_t> retain_floor{~0ull};
  };

  [[nodiscard]] Shard& shard_of(const tsdb::SeriesKey& key);
  [[nodiscard]] const Shard& shard_of(const tsdb::SeriesKey& key) const;
  /// Takes the shard mutex, charging any blocked wait to the shard's
  /// contention counters (a first-try acquisition costs no clock read).
  [[nodiscard]] std::unique_lock<std::mutex> lock_shard(Shard& shard);
  /// Observe/predict bodies shared by the batched fan-out and the
  /// single-item fast path; run under the shard mutex.
  void observe_shard(Shard& shard, std::span<const Observation> batch,
                     std::span<const std::size_t> indices);
  void predict_shard(Shard& shard, std::span<const tsdb::SeriesKey> keys,
                     std::span<const std::size_t> indices,
                     std::vector<Prediction>& out);
  void absorb(Shard& shard, const tsdb::SeriesKey& key, double value);
  [[nodiscard]] Prediction forecast(Shard& shard, const tsdb::SeriesKey& key);
  /// Read-only forecast (LarPredictor::peek_next): no prediction-DB record,
  /// no pending-forecast update — the follower read path.
  [[nodiscard]] Prediction peek_forecast(Shard& shard,
                                         const tsdb::SeriesKey& key);
  /// Throws StaleRead when a bounded follower has not been caught up within
  /// max_staleness; no-op on leaders and unbounded followers.
  void check_freshness() const;
  void train_series(Shard& shard, const tsdb::SeriesKey& key,
                    SeriesState& state, bool is_retrain);
  /// Cold-tier training (LarPredictor::train_fast) once fast_train_samples
  /// have accumulated; runs under the shard mutex.
  void fast_train_series(Shard& shard, SeriesState& state);
  /// Whether the cold-start tier is configured on (fast_tier + threshold).
  [[nodiscard]] bool fast_tier_enabled() const noexcept {
    return config_.fast_train_samples > 0 &&
           config_.lar.fast_tier != selection::FastTier::None;
  }
  bool erase_locked(Shard& shard, const tsdb::SeriesKey& key);
  /// Appends one WAL frame (type + key [+ value]) to the shard's log.
  /// Must run under the shard mutex, BEFORE the mutation it describes.
  void wal_log(Shard& shard, std::uint8_t type, const tsdb::SeriesKey& key,
               const double* value);
  /// Stages one WAL frame into the shard writer's open group without
  /// writing it; requires shard.wal engaged and the shard mutex held.  The
  /// batched paths stage every frame of a (shard, batch) pair, then group
  /// commit once — still before any staged mutation is applied.
  void wal_stage(Shard& shard, std::uint8_t type, const tsdb::SeriesKey& key,
                 const double* value);
  /// Wakes the WalSyncer when this shard's backlog crossed the threshold.
  /// Called right after a commit, still under the shard mutex.
  void maybe_notify_syncer(Shard& shard);
  /// Builds and starts the maintenance thread (async syncer and/or the
  /// Sync-mode Interval idle tick); no-op when neither is needed.
  void start_syncer();
  /// Serializes one shard section (payload v4: codec table + compressed
  /// series blocks), accumulating the raw-equivalent and actual byte counts
  /// into the accounting out-params.
  void save_shard(persist::io::Writer& w, Shard& shard,
                  std::uint64_t& raw_bytes, std::uint64_t& encoded_bytes) const;
  /// Reads one shard section.  `payload_version` selects the layout: v1
  /// sections lead with the shard's WAL watermark (returned); v2 sections
  /// carry per-shard traffic counters instead and the watermark lives in
  /// the payload-level table (returns 0).
  std::uint64_t load_shard(persist::io::Reader& r, Shard& shard,
                           std::uint32_t payload_version);
  /// Applies one replayed WAL frame to its shard — a legacy per-op payload
  /// or a compressed block (dispatched on the payload's first byte; blocks
  /// advance the shard codec exactly as encoding them did).
  void apply_wal_frame(Shard& shard, std::span<const std::byte> payload);
  /// Applies one logical operation (the body both frame formats decode to).
  void apply_op(Shard& shard, std::uint8_t type, const tsdb::SeriesKey& key,
                double value);

  /// Groups batch indices by shard and runs fn(shard_id, indices) across
  /// the worker pool, one task per shard with work.
  template <typename KeyOf, typename Fn>
  void for_each_shard(std::size_t count, const KeyOf& key_of, const Fn& fn);

  predictors::PredictorPool pool_prototype_;
  EngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool pool_;

  std::atomic<std::uint64_t> observe_nanos_{0};
  std::atomic<std::uint64_t> predict_nanos_{0};
  std::atomic<std::uint64_t> snapshot_pause_nanos_{0};
  std::atomic<std::size_t> snapshots_{0};
  // Follower freshness clock: steady-clock nanos of the last caught-up
  // confirmation; 0 = never confirmed (stale until the first heartbeat).
  std::atomic<std::uint64_t> last_caught_up_nanos_{0};
  std::atomic<std::size_t> replicated_frames_{0};
  /// True when wal.mode == Async with a policy the syncer owns (not Always).
  bool async_wal_ = false;
  /// Declared after shards_ so it is destroyed (thread joined) before the
  /// WalWriters it points into; the destructor also resets it explicitly
  /// before the final flush.
  std::optional<persist::WalSyncer> syncer_;
};

}  // namespace larp::serve
