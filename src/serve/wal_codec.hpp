// WalPayloadCodec — compressed block encoding for engine WAL payloads
// (engine payload v4; DESIGN.md §11).
//
// Instead of one WAL frame per operation (whose 16-byte frame header and
// repeated key strings dominate the bytes), the engine packs every op of a
// (shard, batched-call) pair into ONE bit-packed block frame:
//
//   byte 0          : 0xB1 block marker (legacy per-op payloads start with
//                     the op type byte 0/1/2, so the first byte of a payload
//                     discriminates the two formats — no version bump of the
//                     WAL container needed, and src/replication ships either
//                     transparently since payloads are opaque to it)
//   bits            : uvarint op count, then per op:
//     2 bits        : type (0 observe / 1 predict / 2 erase)
//     1 bit         : new-key flag
//       new key     : 3 × (uvarint length + raw 8-bit chars), assigned the
//                     next dictionary id
//       known key   : dictionary id in ceil(log2(dict size)) bits
//     observe only  : value, XOR-encoded against the SERIES' previous value
//                     (persist::codec::XorEncoder over per-series state)
//
// The codec is a deterministic state machine shared by the encode and
// decode directions: the key dictionary only ever grows (erase keeps the
// entry — ids must stay stable for replay) and per-series XOR chains span
// frames.  Encoding advances the state at stage time under the shard lock;
// decoding a frame advances it identically — so decode(replayed frames,
// starting from the snapshot's saved state) always reproduces the encoder's
// state, which is what lets the chain continue across crash recovery.  The
// engine persists this state per shard in the v4 snapshot at the WAL
// watermark cut; frames below the cut are never decoded (their effect IS
// the saved state), frames at/past it decode from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "persist/codec.hpp"
#include "persist/io.hpp"
#include "tsdb/series.hpp"

namespace larp::serve {

/// Leading payload byte of a compressed block frame.  Legacy per-op
/// payloads start with their type byte (0, 1, 2), so values >= 0xB0 are
/// free for framing markers.
inline constexpr std::uint8_t kWalBlockMarker = 0xB1;

/// One operation decoded from a block frame.  `key` points into the codec's
/// dictionary and stays valid for the codec's lifetime.
struct WalOp {
  std::uint8_t type = 0;  // kWalObserve / kWalPredict / kWalErase
  const tsdb::SeriesKey* key = nullptr;
  double value = 0.0;  // observe only
};

class WalPayloadCodec {
 public:
  /// Starts a block of exactly `op_count` operations.  The engine knows the
  /// batch size up front, which is what lets the count travel as a prefix.
  void begin_block(std::size_t op_count);
  void add_observe(const tsdb::SeriesKey& key, double value);
  void add_predict(const tsdb::SeriesKey& key);
  void add_erase(const tsdb::SeriesKey& key);
  /// Ends the block and returns its payload bytes (valid until the next
  /// begin_block).  Exactly op_count ops must have been added.
  [[nodiscard]] std::span<const std::byte> finish_block();

  /// Whether a WAL payload is a compressed block (vs a legacy per-op frame).
  [[nodiscard]] static bool is_block(std::span<const std::byte> payload) {
    return !payload.empty() &&
           std::to_integer<std::uint8_t>(payload[0]) == kWalBlockMarker;
  }

  /// Op count of a block payload WITHOUT decoding it (the count prefix is
  /// byte-aligned by construction) — the record weight a follower stages a
  /// relayed frame with.  Returns 1 for legacy per-op payloads.
  [[nodiscard]] static std::size_t payload_weight(
      std::span<const std::byte> payload);

  /// Decodes one block payload, invoking `fn` per op in encode order, and
  /// advances the codec state exactly as encoding it did.  Throws
  /// persist::CorruptData on malformed bytes.
  void decode_block(std::span<const std::byte> payload,
                    const std::function<void(const WalOp&)>& fn);

  /// Snapshot persistence of the full codec state (dictionary + per-series
  /// XOR chains), taken at the shard's WAL watermark cut.
  void save(persist::io::Writer& w) const;
  void load(persist::io::Reader& r);

  [[nodiscard]] std::size_t dictionary_size() const { return keys_.size(); }

 private:
  [[nodiscard]] std::uint32_t intern(const tsdb::SeriesKey& key, bool encode);
  void put_key(const tsdb::SeriesKey& key);
  [[nodiscard]] std::uint32_t get_key(persist::codec::BlockReader& r);
  /// Bits of a known-key id reference given the current dictionary size.
  [[nodiscard]] unsigned id_bits() const;

  // id -> key: deque so WalOp::key pointers survive dictionary growth.
  std::deque<tsdb::SeriesKey> keys_;
  std::unordered_map<tsdb::SeriesKey, std::uint32_t> ids_;
  std::vector<persist::codec::XorState> values_;  // per-series XOR chain

  persist::codec::BlockWriter writer_;
  std::size_t pending_ops_ = 0;  // ops promised to the open block
  std::size_t added_ops_ = 0;
};

}  // namespace larp::serve
