#include "serve/wal_codec.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace larp::serve {

namespace {

// Block op types mirror the legacy WAL frame type bytes.
constexpr std::uint8_t kOpObserve = 0;
constexpr std::uint8_t kOpPredict = 1;
constexpr std::uint8_t kOpErase = 2;

constexpr std::size_t kMaxKeyPart = 1u << 20;  // sanity bound on decode

void put_string(persist::codec::BlockWriter& w, const std::string& s) {
  w.uvarint(s.size());
  for (const char c : s) w.bits(static_cast<std::uint8_t>(c), 8);
}

std::string get_string(persist::codec::BlockReader& r) {
  const std::uint64_t n = r.uvarint();
  if (n > kMaxKeyPart) {
    throw persist::CorruptData("wal block: key component too long");
  }
  std::string s;
  s.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(r.bits(8)));
  }
  return s;
}

}  // namespace

unsigned WalPayloadCodec::id_bits() const {
  // Width both sides derive from the dictionary size alone, so it needs no
  // bytes on the wire.  One key still takes one bit (id 0) — a zero-bit
  // field would make the new-key flag ambiguous to fuzzers' eyes, and a
  // whole bit per op is cheap.
  const std::size_t n = keys_.size();
  return n <= 1
             ? 1u
             : static_cast<unsigned>(std::bit_width(n - 1));
}

std::uint32_t WalPayloadCodec::intern(const tsdb::SeriesKey& key, bool encode) {
  const auto it = ids_.find(key);
  if (it != ids_.end()) {
    if (encode) {
      writer_.bit(false);  // known key
      writer_.bits(it->second, id_bits());
    }
    return it->second;
  }
  if (encode) {
    writer_.bit(true);  // new key: ships its strings, takes the next id
    put_string(writer_, key.vm_id);
    put_string(writer_, key.device_id);
    put_string(writer_, key.metric);
  }
  const auto id = static_cast<std::uint32_t>(keys_.size());
  keys_.push_back(key);
  ids_.emplace(keys_.back(), id);
  values_.emplace_back();
  return id;
}

void WalPayloadCodec::begin_block(std::size_t op_count) {
  writer_.clear();
  writer_.bits(kWalBlockMarker, 8);
  writer_.uvarint(op_count);
  pending_ops_ = op_count;
  added_ops_ = 0;
}

void WalPayloadCodec::add_observe(const tsdb::SeriesKey& key, double value) {
  writer_.bits(kOpObserve, 2);
  const std::uint32_t id = intern(key, /*encode=*/true);
  persist::codec::XorEncoder::put(writer_, values_[id], value);
  ++added_ops_;
}

void WalPayloadCodec::add_predict(const tsdb::SeriesKey& key) {
  writer_.bits(kOpPredict, 2);
  (void)intern(key, /*encode=*/true);
  ++added_ops_;
}

void WalPayloadCodec::add_erase(const tsdb::SeriesKey& key) {
  writer_.bits(kOpErase, 2);
  // The dictionary entry outlives the series: ids must stay stable for any
  // frame already written, and a re-created series resumes the chain.
  (void)intern(key, /*encode=*/true);
  ++added_ops_;
}

std::span<const std::byte> WalPayloadCodec::finish_block() {
  if (added_ops_ != pending_ops_) {
    throw StateError("WalPayloadCodec: block op count mismatch");
  }
  return writer_.bytes();
}

std::size_t WalPayloadCodec::payload_weight(
    std::span<const std::byte> payload) {
  if (!is_block(payload)) return 1;
  persist::codec::BlockReader r(payload);
  (void)r.bits(8);  // marker
  return static_cast<std::size_t>(std::max<std::uint64_t>(1, r.uvarint()));
}

std::uint32_t WalPayloadCodec::get_key(persist::codec::BlockReader& r) {
  if (r.bit()) {
    tsdb::SeriesKey key;
    key.vm_id = get_string(r);
    key.device_id = get_string(r);
    key.metric = get_string(r);
    // A "new key" the dictionary already holds would desync the id widths
    // between encoder and decoder — corrupt by construction.
    if (ids_.contains(key)) {
      throw persist::CorruptData("wal block: duplicate new-key entry");
    }
    return intern(key, /*encode=*/false);
  }
  const auto id = static_cast<std::uint32_t>(r.bits(id_bits()));
  if (id >= keys_.size()) {
    throw persist::CorruptData("wal block: key id out of range");
  }
  return id;
}

void WalPayloadCodec::decode_block(
    std::span<const std::byte> payload,
    const std::function<void(const WalOp&)>& fn) {
  persist::codec::BlockReader r(payload);
  if (r.bits(8) != kWalBlockMarker) {
    throw persist::CorruptData("wal block: bad marker");
  }
  const std::uint64_t count = r.uvarint();
  // A block frame is bounded by the batch size that produced it; anything
  // astronomically larger is a corrupt count about to starve the replay.
  if (count > (payload.size() + 1) * 8) {
    throw persist::CorruptData("wal block: impossible op count");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    WalOp op;
    op.type = static_cast<std::uint8_t>(r.bits(2));
    if (op.type > kOpErase) {
      throw persist::CorruptData("wal block: unknown op type");
    }
    const std::uint32_t id = get_key(r);
    if (op.type == kOpObserve) {
      op.value = persist::codec::XorDecoder::get(r, values_[id]);
    }
    op.key = &keys_[id];
    fn(op);
  }
}

void WalPayloadCodec::save(persist::io::Writer& w) const {
  w.u64(keys_.size());
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    w.str(keys_[i].vm_id);
    w.str(keys_[i].device_id);
    w.str(keys_[i].metric);
    values_[i].save(w);
  }
}

void WalPayloadCodec::load(persist::io::Reader& r) {
  keys_.clear();
  ids_.clear();
  values_.clear();
  const auto n = static_cast<std::size_t>(r.length(r.u64(), 10));
  for (std::size_t i = 0; i < n; ++i) {
    tsdb::SeriesKey key{r.str(), r.str(), r.str()};
    if (ids_.contains(key)) {
      throw persist::CorruptData("wal codec table: duplicate key");
    }
    keys_.push_back(std::move(key));
    ids_.emplace(keys_.back(), static_cast<std::uint32_t>(i));
    values_.emplace_back();
    values_.back().load(r);
  }
}

}  // namespace larp::serve
