#include "core/applicability.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::core {

const char* to_string(ApplicabilityVerdict verdict) noexcept {
  switch (verdict) {
    case ApplicabilityVerdict::NotApplicable: return "NOT_APPLICABLE";
    case ApplicabilityVerdict::SingleExpertSuffices: return "SINGLE_EXPERT_SUFFICES";
    case ApplicabilityVerdict::HeadroomUnrealized: return "HEADROOM_UNREALIZED";
    case ApplicabilityVerdict::Recommended: return "RECOMMENDED";
  }
  return "?";
}

ApplicabilityReport assess_applicability(std::span<const double> raw_series,
                                         const predictors::PredictorPool& pool,
                                         const LarConfig& config,
                                         const ml::CrossValidationPlan& plan,
                                         Rng& rng,
                                         const ApplicabilityThresholds& thresholds) {
  ApplicabilityReport report;
  report.chance_accuracy = 1.0 / static_cast<double>(pool.size());

  const TraceResult cv = cross_validate(raw_series, pool, config, plan, rng);
  if (cv.degenerate) {
    report.verdict = ApplicabilityVerdict::NotApplicable;
    report.explanation =
        "The series has (near-)zero variance: every expert predicts it "
        "perfectly and there is nothing for a selector to decide.";
    return report;
  }

  report.mse_oracle = cv.mse_oracle;
  report.mse_lar = cv.mse_lar;
  report.best_single_label = cv.best_single_label();
  report.mse_best_single = cv.mse_single[report.best_single_label];
  report.selection_accuracy = cv.lar_accuracy;
  if (report.mse_best_single > 0.0) {
    report.oracle_headroom = 1.0 - cv.mse_oracle / report.mse_best_single;
    report.realized_gain = 1.0 - cv.mse_lar / report.mse_best_single;
  }

  // Label dynamics from one mid-split fold walk.
  const std::size_t mid = raw_series.size() / 2;
  if (mid > config.window + 1 && raw_series.size() > mid + 1) {
    try {
      const FoldResult fold = evaluate_fold(raw_series, mid, pool, config);
      const auto& seq = fold.observed_best;
      if (seq.size() > 1) {
        std::size_t switches = 0;
        std::map<std::size_t, double> shares;
        for (std::size_t i = 0; i < seq.size(); ++i) {
          if (i > 0 && seq[i] != seq[i - 1]) ++switches;
          shares[seq[i]] += 1.0;
        }
        report.label_churn =
            static_cast<double>(switches) / static_cast<double>(seq.size() - 1);
        double entropy = 0.0;
        for (auto& [label, count] : shares) {
          const double p = count / static_cast<double>(seq.size());
          entropy -= p * std::log(p);
        }
        const double max_entropy = std::log(static_cast<double>(pool.size()));
        report.label_entropy = max_entropy > 0.0 ? entropy / max_entropy : 0.0;
      }
    } catch (const StateError&) {
      // Constant training half on this particular split: dynamics unknown,
      // ratios above still stand.
    }
  }

  std::ostringstream why;
  if (report.oracle_headroom < thresholds.min_headroom) {
    report.verdict = ApplicabilityVerdict::SingleExpertSuffices;
    why << "A perfect selector would save only "
        << static_cast<int>(report.oracle_headroom * 100.0)
        << "% MSE over the best single expert ('"
        << pool.name(report.best_single_label)
        << "'); run that expert alone and skip the classification overhead.";
  } else if (report.realized_gain >= thresholds.min_realized_gain) {
    report.verdict = ApplicabilityVerdict::Recommended;
    why << "The oracle shows "
        << static_cast<int>(report.oracle_headroom * 100.0)
        << "% headroom and the classifier realizes a "
        << static_cast<int>(report.realized_gain * 100.0)
        << "% gain at " << static_cast<int>(report.selection_accuracy * 100.0)
        << "% selection accuracy (chance "
        << static_cast<int>(report.chance_accuracy * 100.0)
        << "%): adaptive predictor integration pays on this workload.";
  } else {
    report.verdict = ApplicabilityVerdict::HeadroomUnrealized;
    why << "There is "
        << static_cast<int>(report.oracle_headroom * 100.0)
        << "% oracle headroom but the classifier only reaches "
        << static_cast<int>(report.selection_accuracy * 100.0)
        << "% selection accuracy and loses "
        << static_cast<int>(-report.realized_gain * 100.0)
        << "% MSE to the best single expert; the per-window best is not "
        << "predictable from window shape here (label churn "
        << static_cast<int>(report.label_churn * 100.0)
        << "%, entropy " << static_cast<int>(report.label_entropy * 100.0)
        << "%). Consider a longer labeling horizon or a richer feature space.";
  }
  report.explanation = why.str();
  return report;
}

}  // namespace larp::core
