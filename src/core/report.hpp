// Report helpers: fixed-width table rendering shared by the benchmark
// binaries that regenerate the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace larp::core {

/// A simple fixed-width text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with the paper's four-decimal style; NaN prints "NaN"
  /// (matching Table 3's NaN cells).
  [[nodiscard]] static std::string num(double value, int precision = 4);

  /// Percentage with two decimals, e.g. "55.98%".
  [[nodiscard]] static std::string pct(double fraction, int precision = 2);

  /// Writes the table with aligned columns and a separator under the header.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a label series as a compact ASCII strip chart, one lane per
/// class — the textual analogue of the Fig. 4/5 step plots.  `names` maps
/// label -> display name; series values must be < names.size().
[[nodiscard]] std::string render_label_strip(
    const std::vector<std::size_t>& series,
    const std::vector<std::string>& names, std::size_t max_width = 100);

}  // namespace larp::core
