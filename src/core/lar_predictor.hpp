// LarPredictor: the paper's primary contribution (§6) — the Learning-Aided
// Adaptive Resource Predictor.
//
// Training phase (train()):
//   1. fit the z-score normalizer on the raw training series;
//   2. fit the pool's parametric members (AR via Yule–Walker);
//   3. walk the normalized series, run ALL pool members in parallel on each
//      window, and label the window with the member whose one-step forecast
//      had the smallest absolute error (the mix-of-expert labeling, §6.1);
//   4. fit PCA on the training windows and index the PCA-projected windows
//      with their labels in a k-NN classifier.
//
// Testing / online phase (observe() + predict_next()):
//   the current window is projected through the SAME normalizer and PCA,
//   classified by the k-NN majority vote, and ONLY the winning predictor is
//   run — the paper's efficiency claim over NWS-style parallel evaluation.
//
// Thread-safety / locking contract (relied on by serve::PredictionEngine):
//   a LarPredictor is NOT internally synchronized.  predict_next() is
//   non-const by design — the Selector interface is stateful in general and
//   predict_next() records the pending forecast for residual tracking — so
//   both the mutating entry points (train/retrain/observe/predict_next) and
//   the const accessors must be serialized under one external mutex per
//   predictor instance.  Distinct instances share no mutable state and may
//   be driven from different threads without any locking.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "ml/normalizer.hpp"
#include "ml/pca.hpp"
#include "predictors/pool.hpp"
#include "selection/selector.hpp"
#include "util/stats.hpp"

namespace larp::persist::io {
class Reader;
class Writer;
}  // namespace larp::persist::io

namespace larp::core {

class LarPredictor {
 public:
  /// Takes ownership of the expert pool (the paper's {LAST, AR, SW_AVG}, or
  /// any pool from predictors/pool.hpp).  Throws InvalidArgument for an
  /// empty pool or a zero window.
  LarPredictor(predictors::PredictorPool pool, LarConfig config);

  /// Full training pass on a raw series.  Requires at least
  /// window + 2 points (one labeled window plus one for the normalizer to
  /// see variance).  Leaves the predictor warm: the online window is the
  /// tail of the training series, so predict_next() continues seamlessly.
  void train(std::span<const double> raw_series);

  /// Cold-start training pass for the constant-time fast tier (DESIGN.md
  /// §10): fits the normalizer and the pool exactly like train(), but
  /// instead of the labeling walk + PCA + classifier it warms an O(1)
  /// hardware-style selector (LarConfig::fast_tier) on the series and
  /// installs it behind a selection::TieredSelector.  The predictor serves
  /// immediately; a later train() on the same instance promotes the full
  /// classifier and hands off.  Throws StateError when no fast tier is
  /// configured; same length/finiteness requirements as train().
  void train_fast(std::span<const double> raw_series);

  [[nodiscard]] bool trained() const noexcept { return selector_ != nullptr; }

  /// True while forecasts are served by the O(1) fast tier (train_fast()
  /// ran but full training has not yet promoted the classifier).
  [[nodiscard]] bool serving_fast_tier() const noexcept {
    return tiered_ != nullptr && !tiered_->serving_primary();
  }

  /// One forecast made by the selected expert only.
  struct Forecast {
    double value = 0.0;     // raw (de-normalized) predicted next value
    std::size_t label = 0;  // pool member that produced it
    /// One-sigma error estimate from the predictor's own recent online
    /// residuals (LarConfig::uncertainty_window); NaN until
    /// LarConfig::uncertainty_warmup() predict/observe pairs have resolved.
    /// Defaults to NaN so a default-constructed forecast can never pass for
    /// a zero-uncertainty (perfectly confident) one.
    double uncertainty = std::numeric_limits<double>::quiet_NaN();
  };

  /// Feeds one raw observation into the online window and the pool members'
  /// online state.  Throws StateError before train().
  void observe(double raw_value);

  /// Classifies the current window and runs only the winning expert.
  /// Throws StateError before train() or before `window` observations exist.
  /// (Non-const because the Selector interface is stateful in general.)
  [[nodiscard]] Forecast predict_next();

  /// predict_next() without the side effect: computes the same forecast but
  /// does NOT record it as the pending forecast for residual tracking, so the
  /// predictor's logical state is unchanged.  Replication followers serve
  /// reads through this path — the leader's own predict_next() stream stays
  /// the single source of the replicated residual history.  (Still non-const:
  /// selection shares the stateful Selector interface and scratch buffers.)
  [[nodiscard]] Forecast peek_next();

  /// Re-runs the training pass on fresh data (the Quality Assuror's
  /// re-training order, §3.2) — equivalent to train() but keeps the pool.
  void retrain(std::span<const double> recent_raw_series);

  // -- introspection -------------------------------------------------------
  [[nodiscard]] const LarConfig& config() const noexcept { return config_; }
  [[nodiscard]] const predictors::PredictorPool& pool() const noexcept {
    return pool_;
  }
  [[nodiscard]] const ml::ZScoreNormalizer& normalizer() const;
  /// The trained selection strategy (KnnSelector or CentroidSelector,
  /// per LarConfig::classifier).
  [[nodiscard]] const selection::Selector& selector() const;
  /// The PCA projection learned in the training phase.
  [[nodiscard]] const ml::Pca& pca() const;
  /// Best-predictor labels assigned to the training windows (§6.1).
  [[nodiscard]] const std::vector<std::size_t>& training_labels() const;
  /// Observations fed since construction (train() + observe()).
  [[nodiscard]] std::size_t observed_count() const noexcept {
    return observed_count_;
  }
  /// Resolved online predict/observe pairs backing Forecast::uncertainty.
  [[nodiscard]] std::size_t resolved_forecasts() const noexcept {
    return resolved_forecasts_;
  }
  /// Windows labeled and absorbed since training (online learning mode).
  [[nodiscard]] std::size_t online_windows_learned() const noexcept {
    return online_windows_learned_;
  }

  /// Serializes the full trained + online state (normalizer, PCA, selector
  /// index, residual trackers, pool member state) so a restored predictor
  /// continues the forecast sequence bit-identically.  load_state() must run
  /// against an instance constructed with the same pool composition and
  /// LarConfig — snapshots store state, not configuration.
  void save_state(persist::io::Writer& w) const;
  void load_state(persist::io::Reader& r);

 private:
  void require_trained() const;
  /// The window the chosen expert predicts from: a view of online_window_,
  /// or (predict_in_pca_space) the PCA-reconstructed window materialized in
  /// scratch_.window.  Never allocates in steady state.
  [[nodiscard]] std::span<const double> prediction_window();

  predictors::PredictorPool pool_;
  LarConfig config_;
  ml::ZScoreNormalizer normalizer_;
  ml::Pca pca_;
  std::unique_ptr<selection::Selector> selector_;
  // Non-owning view of selector_ when it is a TieredSelector (fast tier
  // configured); null otherwise.  Set wherever selector_ is (re)installed.
  selection::TieredSelector* tiered_ = nullptr;
  std::vector<std::size_t> training_labels_;
  std::vector<double> online_window_;  // normalized, most recent last
  std::size_t observed_count_ = 0;

  // Online residual tracking for Forecast::uncertainty: the latest issued
  // forecast (raw units) is resolved against the next observation.
  std::optional<double> pending_forecast_;
  std::optional<stats::WindowedMse> residuals_;
  std::size_t resolved_forecasts_ = 0;

  // Online-learning state (config_.online_learning): windowed-MSE label
  // trackers continuing the training phase's labeling rule.
  std::vector<stats::WindowedMse> online_label_trackers_;
  std::size_t online_windows_learned_ = 0;

  // Per-step scratch: every observe()/predict_next() buffer lives here and
  // reuses its capacity across steps, so the steady-state hot path performs
  // zero heap allocations (asserted by the allocation-counter test).
  struct StepScratch {
    std::vector<double> forecasts;  // pool predict_all_into results
    std::vector<double> errors;     // per-member tracker errors for labeling
    std::vector<double> weights;    // soft-vote weights
    std::vector<double> reduced;    // PCA projection (predict_in_pca_space)
    std::vector<double> window;     // reconstructed window (pca-space mode)
  };
  StepScratch scratch_;
};

/// Labels every supervised window of a normalized series by running all pool
/// members in parallel (§6.1).  With Labeling::StepAbsoluteError the label is
/// the smallest-|error| member on the window's own target; with
/// Labeling::WindowMse it is the member with the lowest MSE over the last
/// `label_window` one-step forecasts (0 = use `window`).  The pool's online
/// state is walked in series order; the pool must already be fitted.
/// Exposed for the experiment runner and tests.
[[nodiscard]] std::vector<std::size_t> label_best_predictors(
    predictors::PredictorPool& pool, std::span<const double> normalized_series,
    std::size_t window, Labeling labeling = Labeling::WindowMse,
    std::size_t label_window = 0);

}  // namespace larp::core
