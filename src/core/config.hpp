// LarConfig: the knobs of the LARPredictor pipeline, defaulting to the
// paper's implementation choices (§6–7): prediction window m = 5 (16 for the
// VM1/Table-2 experiment), n = 2 principal components, 3-NN classification.
#pragma once

#include <cstddef>

#include "ml/knn.hpp"
#include "ml/pca.hpp"
#include "selection/tiered_selector.hpp"

namespace larp::core {

/// How training windows are labeled with their "best predictor" (§6.1).
/// The paper states both readings: §7.2.1 labels each window with the expert
/// whose one-step forecast had the smallest absolute error, while §6.1 and
/// Fig. 3 label with the expert that "generates the least MSE" over the
/// window.  Per-step labels are pure noise wherever experts are near-tied
/// (noise-dominated stretches), which poisons the classifier; the windowed
/// reading concentrates labels on the locally dominant expert and is the
/// default (ablated in bench_ablation_labeling).
enum class Labeling {
  StepAbsoluteError,  // §7.2.1 reading: argmin |forecast - actual| per step
  WindowMse,          // §6.1/Fig.3 reading: argmin MSE over the last window
};

/// Classification algorithm of the selector (§5: the methodology "may be
/// generally used with other types of classification algorithms").
enum class ClassifierKind {
  Knn,              // the paper's k-NN (k and backend configured below)
  NearestCentroid,  // one centroid per class; O(P) queries
};

struct LarConfig {
  /// Prediction window / order m ("framed with the prediction window size").
  std::size_t window = 5;

  /// PCA component policy: fixed n = 2 like the paper, or 0 to select by
  /// min_variance_fraction instead.
  std::size_t pca_components = 2;
  double pca_min_variance = 0.9;

  /// Which classifier drives the selection (the paper uses k-NN).
  ClassifierKind classifier = ClassifierKind::Knn;

  /// Neighbours consulted by the k-NN classifier (odd; 3 in the paper).
  std::size_t knn_k = 3;

  /// Neighbour-search backend; brute force matches the paper's Matlab run,
  /// KdTree exercises the §7.3 fast-NN option.
  ml::KnnBackend knn_backend = ml::KnnBackend::BruteForce;

  /// Training-label definition (see Labeling above).
  Labeling labeling = Labeling::WindowMse;
  /// Error window for Labeling::WindowMse; 0 means "use `window` (m)".
  std::size_t label_window = 0;

  /// Number of recent online residuals backing Forecast::uncertainty.
  std::size_t uncertainty_window = 32;

  /// Resolved predict/observe pairs required before Forecast::uncertainty
  /// turns finite: an eighth of the residual window (minimum 1), so shorter
  /// windows warm up proportionally faster.  (The default window of 32
  /// keeps the historical warm-up of 4.)
  [[nodiscard]] std::size_t uncertainty_warmup() const noexcept {
    const std::size_t warmup = uncertainty_window / 8;
    return warmup > 0 ? warmup : 1;
  }

  /// Soft voting (the "probability-based voting" combination strategy of
  /// the paper's §2 citations [16]): instead of running only the
  /// majority-vote winner, the forecast is the neighbour-vote-share-weighted
  /// combination of the voted experts.  Costs running every expert with a
  /// non-zero vote (at most k per step).
  bool soft_vote = false;

  /// Online learning (extension of §8's accuracy future work): when true,
  /// every observed value also labels the window it completes (running the
  /// FULL pool in parallel on that window, like the training phase) and the
  /// labeled window is appended to the classifier's index.  This trades the
  /// paper's single-expert runtime claim for a selector that keeps adapting
  /// without QA-triggered re-training.  The PCA projection stays fixed.
  bool online_learning = false;

  /// Ablation of the Fig.-3-vs-§6.2 ambiguity (DESIGN.md §5): when true,
  /// predictors see the window reconstructed from its PCA projection (only
  /// the retained-variance information), instead of the raw normalized
  /// window the paper's §6.2 describes.
  bool predict_in_pca_space = false;

  /// Constant-time fast tier (DESIGN.md §10): when not None, the trained
  /// selector is a selection::TieredSelector — an O(1) hardware-style
  /// selector serves while the series is cold (train_fast()) and hands off
  /// to the k-NN/centroid classifier the moment full training installs it,
  /// bit-identical to running the classifier alone from then on.
  /// Incompatible with predict_in_pca_space (the cold tier has no fitted
  /// PCA to reconstruct windows through).
  selection::FastTier fast_tier = selection::FastTier::None;
  /// Counter widths / history depth / readiness threshold of the fast tier.
  selection::FastTierConfig fast;

  [[nodiscard]] ml::PcaPolicy pca_policy() const {
    return ml::PcaPolicy{pca_components, pca_min_variance};
  }
};

}  // namespace larp::core
