#include "core/lar_predictor.hpp"

#include <cmath>
#include <limits>

#include "ml/framing.hpp"
#include "persist/io.hpp"
#include "selection/centroid_selector.hpp"
#include "selection/knn_selector.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace larp::core {

LarPredictor::LarPredictor(predictors::PredictorPool pool, LarConfig config)
    : pool_(std::move(pool)), config_(config) {
  if (pool_.empty()) throw InvalidArgument("LarPredictor: empty pool");
  if (config_.window == 0) throw InvalidArgument("LarPredictor: zero window");
  if (config_.window < pool_.min_history()) {
    throw InvalidArgument(
        "LarPredictor: window smaller than the pool's minimum history");
  }
  if (config_.knn_k == 0) throw InvalidArgument("LarPredictor: k must be positive");
  if (config_.fast_tier != selection::FastTier::None &&
      config_.predict_in_pca_space) {
    throw InvalidArgument(
        "LarPredictor: fast_tier is incompatible with predict_in_pca_space "
        "(the cold tier has no fitted PCA)");
  }
}

std::vector<std::size_t> label_best_predictors(
    predictors::PredictorPool& pool, std::span<const double> normalized_series,
    std::size_t window, Labeling labeling, std::size_t label_window) {
  if (normalized_series.size() <= window) {
    throw InvalidArgument("label_best_predictors: series shorter than window+1");
  }
  const std::size_t count = normalized_series.size() - window;
  std::vector<std::size_t> labels;
  labels.reserve(count);

  if (label_window == 0) label_window = window;
  std::vector<stats::WindowedMse> trackers(
      pool.size(), stats::WindowedMse(label_window));

  pool.reset_all();
  // Prime online state with the first window's worth of observations.
  for (std::size_t i = 0; i < window; ++i) {
    pool.observe_all(normalized_series[i]);
  }
  // Per-step buffers hoisted out of the walk: the labeling pass runs over
  // every training window, so per-step vector churn shows up in train().
  std::vector<double> forecasts;
  std::vector<double> errors;
  forecasts.reserve(pool.size());
  errors.reserve(pool.size());
  for (std::size_t i = 0; i < count; ++i) {
    const auto win = normalized_series.subspan(i, window);
    const double target = normalized_series[i + window];
    pool.predict_all_into(win, forecasts);
    if (labeling == Labeling::StepAbsoluteError) {
      labels.push_back(selection::best_forecast_label(forecasts, target));
    } else {
      for (std::size_t p = 0; p < pool.size(); ++p) {
        trackers[p].add(forecasts[p], target);
      }
      errors.clear();
      for (const auto& tracker : trackers) errors.push_back(tracker.value());
      labels.push_back(selection::argmin_label(errors));
    }
    pool.observe_all(target);
  }
  return labels;
}

void LarPredictor::train(std::span<const double> raw_series) {
  if (raw_series.size() < config_.window + 2) {
    throw InvalidArgument("LarPredictor::train: series too short (need window+2)");
  }
  for (double value : raw_series) {
    if (!std::isfinite(value)) {
      throw InvalidArgument(
          "LarPredictor::train: non-finite sample in training series");
    }
  }

  normalizer_.fit(raw_series);
  const auto normalized = normalizer_.transform(raw_series);

  pool_.fit_all(normalized);
  training_labels_ =
      label_best_predictors(pool_, normalized, config_.window,
                            config_.labeling, config_.label_window);

  const auto framed = ml::frame_supervised(normalized, config_.window);
  LARP_ASSERT(framed.windows.rows() == training_labels_.size());

  pca_ = ml::Pca{};
  pca_.fit(framed.windows, config_.pca_policy());

  std::unique_ptr<selection::Selector> primary;
  if (config_.classifier == ClassifierKind::NearestCentroid) {
    ml::NearestCentroidClassifier classifier;
    classifier.fit(pca_.transform(framed.windows), training_labels_);
    primary = std::make_unique<selection::CentroidSelector>(
        pca_, std::move(classifier));
  } else {
    ml::KnnClassifier classifier(config_.knn_k, config_.knn_backend);
    classifier.fit(pca_.transform(framed.windows), training_labels_);
    primary =
        std::make_unique<selection::KnnSelector>(pca_, std::move(classifier));
  }
  if (tiered_ != nullptr) {
    // Handoff: full training on a fast-serving predictor promotes the
    // classifier in place; the tier keeps its trained counters but every
    // future select() routes to the (ready) primary.
    tiered_->promote(std::move(primary));
  } else if (config_.fast_tier != selection::FastTier::None) {
    auto tiered = std::make_unique<selection::TieredSelector>(
        selection::make_fast_selector(config_.fast_tier, pool_.size(),
                                      config_.fast),
        std::move(primary));
    tiered_ = tiered.get();
    selector_ = std::move(tiered);
  } else {
    selector_ = std::move(primary);
  }

  // Warm online state: the window is the training tail and the pool members
  // have already observed the whole series during labeling.
  online_window_.assign(normalized.end() - config_.window, normalized.end());
  observed_count_ = raw_series.size();
  pending_forecast_.reset();
  residuals_.emplace(std::max<std::size_t>(1, config_.uncertainty_window));
  resolved_forecasts_ = 0;
  const std::size_t horizon =
      config_.label_window == 0 ? config_.window : config_.label_window;
  online_label_trackers_.assign(pool_.size(), stats::WindowedMse(horizon));
  online_windows_learned_ = 0;

  LARP_LOG_INFO("core") << "LarPredictor trained on " << raw_series.size()
                        << " points, " << training_labels_.size()
                        << " labeled windows, pool of " << pool_.size();
}

void LarPredictor::train_fast(std::span<const double> raw_series) {
  if (config_.fast_tier == selection::FastTier::None) {
    throw StateError("LarPredictor::train_fast: no fast tier configured");
  }
  if (raw_series.size() < config_.window + 2) {
    throw InvalidArgument(
        "LarPredictor::train_fast: series too short (need window+2)");
  }
  for (double value : raw_series) {
    if (!std::isfinite(value)) {
      throw InvalidArgument(
          "LarPredictor::train_fast: non-finite sample in training series");
    }
  }

  normalizer_.fit(raw_series);
  const auto normalized = normalizer_.transform(raw_series);
  pool_.fit_all(normalized);

  // Warm the O(1) tier with the same walk the labeling pass uses: prime the
  // pool with the first window, then per step run every member, let the tier
  // pick (priming its window features), and feed it the hindsight outcome.
  auto fast = selection::make_fast_selector(config_.fast_tier, pool_.size(),
                                            config_.fast);
  pool_.reset_all();
  for (std::size_t i = 0; i < config_.window; ++i) {
    pool_.observe_all(normalized[i]);
  }
  const std::size_t count = normalized.size() - config_.window;
  scratch_.forecasts.reserve(pool_.size());
  for (std::size_t i = 0; i < count; ++i) {
    const auto win =
        std::span<const double>(normalized).subspan(i, config_.window);
    const double target = normalized[i + config_.window];
    pool_.predict_all_into(win, scratch_.forecasts);
    (void)fast->select(win);
    fast->record(scratch_.forecasts, target);
    pool_.observe_all(target);
  }

  // No PCA / labels until the full train() promotes the classifier.
  pca_ = ml::Pca{};
  training_labels_.clear();
  auto tiered = std::make_unique<selection::TieredSelector>(std::move(fast));
  tiered_ = tiered.get();
  selector_ = std::move(tiered);

  online_window_.assign(normalized.end() - config_.window, normalized.end());
  observed_count_ = raw_series.size();
  pending_forecast_.reset();
  residuals_.emplace(std::max<std::size_t>(1, config_.uncertainty_window));
  resolved_forecasts_ = 0;
  const std::size_t horizon =
      config_.label_window == 0 ? config_.window : config_.label_window;
  online_label_trackers_.assign(pool_.size(), stats::WindowedMse(horizon));
  online_windows_learned_ = 0;

  LARP_LOG_INFO("core") << "LarPredictor fast-trained on " << raw_series.size()
                        << " points (" << selector_->name() << ")";
}

void LarPredictor::require_trained() const {
  if (!trained()) throw StateError("LarPredictor: not trained");
}

void LarPredictor::observe(double raw_value) {
  require_trained();
  if (!std::isfinite(raw_value)) {
    throw InvalidArgument("LarPredictor::observe: non-finite sample");
  }
  if (pending_forecast_) {
    residuals_->add(*pending_forecast_, raw_value);
    ++resolved_forecasts_;
    pending_forecast_.reset();
  }
  const double z = normalizer_.transform(raw_value);

  // Fast-tier feedback: while the tiered selector still serves from the
  // O(1) tier, each observation resolves the completed window's full-pool
  // forecasts into record() so the counters keep training.  Running every
  // member is the documented cold-phase cost; it stops at handoff, restoring
  // the single-expert hot path.
  if (serving_fast_tier() && online_window_.size() == config_.window) {
    pool_.predict_all_into(online_window_, scratch_.forecasts);
    (void)selector_->select(online_window_);  // refresh window features
    selector_->record(scratch_.forecasts, z);
  }

  // Online learning: the incoming value completes the current window; run
  // the whole pool on it (training-phase semantics), derive the window's
  // best-predictor label, and grow the classifier's index.  Suppressed while
  // the fast tier serves — record() above is the cold tier's training signal.
  if (config_.online_learning && !serving_fast_tier() &&
      online_window_.size() == config_.window &&
      selector_->supports_online_learning()) {
    pool_.predict_all_into(online_window_, scratch_.forecasts);
    std::size_t label;
    if (config_.labeling == Labeling::StepAbsoluteError) {
      label = selection::best_forecast_label(scratch_.forecasts, z);
    } else {
      for (std::size_t p = 0; p < pool_.size(); ++p) {
        online_label_trackers_[p].add(scratch_.forecasts[p], z);
      }
      scratch_.errors.clear();
      for (const auto& tracker : online_label_trackers_) {
        scratch_.errors.push_back(tracker.value());
      }
      label = selection::argmin_label(scratch_.errors);
    }
    selector_->learn(online_window_, label);
    ++online_windows_learned_;
  }

  pool_.observe_all(z);
  online_window_.push_back(z);
  if (online_window_.size() > config_.window) {
    online_window_.erase(online_window_.begin());
  }
  ++observed_count_;
}

std::span<const double> LarPredictor::prediction_window() {
  if (online_window_.size() < config_.window) {
    throw StateError("LarPredictor: fewer observations than the window size");
  }
  if (!config_.predict_in_pca_space) return online_window_;
  // Ablation: run the expert on the PCA-reconstructed window, i.e. only the
  // information the retained components carry (DESIGN.md §5).  Both the
  // projection and the reconstruction land in reusable scratch.
  scratch_.reduced.resize(pca_.components());
  scratch_.window.resize(config_.window);
  pca_.transform_into(online_window_, std::span<double>(scratch_.reduced));
  pca_.inverse_transform_into(scratch_.reduced,
                              std::span<double>(scratch_.window));
  return scratch_.window;
}

LarPredictor::Forecast LarPredictor::predict_next() {
  Forecast forecast = peek_next();
  pending_forecast_ = forecast.value;
  return forecast;
}

LarPredictor::Forecast LarPredictor::peek_next() {
  require_trained();
  const auto window = prediction_window();
  // Selection always happens in PCA space on the true window (§6.2).
  std::size_t label;
  double z;
  if (config_.soft_vote) {
    selector_->select_weights_into(online_window_, pool_.size(),
                                   scratch_.weights);
    const auto& weights = scratch_.weights;
    z = 0.0;
    label = 0;  // reported label = the dominant vote
    double best_weight = -1.0;
    for (std::size_t p = 0; p < pool_.size(); ++p) {
      if (weights[p] > 0.0) z += weights[p] * pool_.at(p).predict(window);
      if (weights[p] > best_weight) {
        best_weight = weights[p];
        label = p;
      }
    }
  } else {
    label = selector_->select(online_window_);
    z = pool_.at(label).predict(window);
  }

  Forecast forecast{normalizer_.inverse(z), label,
                    std::numeric_limits<double>::quiet_NaN()};
  if (resolved_forecasts_ >= config_.uncertainty_warmup()) {
    forecast.uncertainty = std::sqrt(residuals_->value());
  }
  return forecast;
}

void LarPredictor::retrain(std::span<const double> recent_raw_series) {
  train(recent_raw_series);
}

const ml::ZScoreNormalizer& LarPredictor::normalizer() const {
  require_trained();
  return normalizer_;
}

const selection::Selector& LarPredictor::selector() const {
  require_trained();
  return *selector_;
}

const ml::Pca& LarPredictor::pca() const {
  require_trained();
  return pca_;
}

const std::vector<std::size_t>& LarPredictor::training_labels() const {
  require_trained();
  return training_labels_;
}

namespace {

constexpr std::uint8_t kSelectorKnn = 1;
constexpr std::uint8_t kSelectorCentroid = 2;
constexpr std::uint8_t kSelectorTiered = 3;

/// kind byte + projection + classifier of a trained primary (classifier)
/// selector — the pre-tiered v1/v2 payload layout, reused verbatim inside
/// the tiered envelope.
void save_primary_selector(persist::io::Writer& w,
                           const selection::Selector& selector) {
  if (const auto* knn =
          dynamic_cast<const selection::KnnSelector*>(&selector)) {
    w.u8(kSelectorKnn);
    knn->pca().save(w);
    knn->classifier().save(w);
  } else if (const auto* centroid =
                 dynamic_cast<const selection::CentroidSelector*>(&selector)) {
    w.u8(kSelectorCentroid);
    centroid->pca().save(w);
    centroid->classifier().save(w);
  } else {
    throw StateError("LarPredictor::save_state: unknown selector type");
  }
}

std::unique_ptr<selection::Selector> load_primary_selector(
    persist::io::Reader& r, std::uint8_t kind) {
  ml::Pca selector_pca;
  selector_pca.load(r);
  if (kind == kSelectorKnn) {
    ml::KnnClassifier classifier;
    classifier.load(r);
    return std::make_unique<selection::KnnSelector>(std::move(selector_pca),
                                                    std::move(classifier));
  }
  if (kind == kSelectorCentroid) {
    ml::NearestCentroidClassifier classifier;
    classifier.load(r);
    return std::make_unique<selection::CentroidSelector>(
        std::move(selector_pca), std::move(classifier));
  }
  throw persist::CorruptData("LarPredictor: unknown serialized selector kind");
}

void save_windowed(persist::io::Writer& w, const stats::WindowedMse& m) {
  w.f64_span(m.raw_buffer());
  w.u64(m.head());
  w.f64(m.sum());
}

void load_windowed(persist::io::Reader& r, stats::WindowedMse& m) {
  auto buffer = r.f64_vector();
  const auto head = static_cast<std::size_t>(r.u64());
  const double sum = r.f64();
  try {
    m.restore(std::move(buffer), head, sum);
  } catch (const Error& e) {
    // An impossible ring state means the payload disagrees with this
    // configuration — surface it as corruption, not a usage error.
    throw persist::CorruptData(e.what());
  }
}

}  // namespace

void LarPredictor::save_state(persist::io::Writer& w) const {
  w.boolean(trained());
  if (!trained()) return;

  normalizer_.save(w);
  pca_.save(w);

  if (const auto* tiered =
          dynamic_cast<const selection::TieredSelector*>(selector_.get())) {
    w.u8(kSelectorTiered);
    selection::save_fast_selector(w, tiered->fast_tier());
    const selection::Selector* primary = tiered->primary_tier();
    w.boolean(primary != nullptr);
    if (primary != nullptr) save_primary_selector(w, *primary);
  } else {
    save_primary_selector(w, *selector_);
  }

  w.u64_span(training_labels_);
  w.f64_span(online_window_);
  w.u64(observed_count_);

  w.boolean(pending_forecast_.has_value());
  if (pending_forecast_) w.f64(*pending_forecast_);
  w.boolean(residuals_.has_value());
  if (residuals_) save_windowed(w, *residuals_);
  w.u64(resolved_forecasts_);

  w.u64(online_label_trackers_.size());
  for (const auto& tracker : online_label_trackers_) save_windowed(w, tracker);
  w.u64(online_windows_learned_);

  w.u64(pool_.size());
  for (std::size_t p = 0; p < pool_.size(); ++p) pool_.at(p).save_state(w);
}

void LarPredictor::load_state(persist::io::Reader& r) {
  if (!r.boolean()) {
    // Serialized before training: nothing beyond the construction state.
    selector_.reset();
    tiered_ = nullptr;
    return;
  }

  normalizer_.load(r);
  pca_.load(r);

  const std::uint8_t kind = r.u8();
  tiered_ = nullptr;
  if (kind == kSelectorTiered) {
    auto fast = selection::load_fast_selector(r);
    std::unique_ptr<selection::Selector> primary;
    if (r.boolean()) primary = load_primary_selector(r, r.u8());
    auto tiered = std::make_unique<selection::TieredSelector>(
        std::move(fast), std::move(primary));
    tiered_ = tiered.get();
    selector_ = std::move(tiered);
  } else {
    selector_ = load_primary_selector(r, kind);
  }

  training_labels_ = r.u64_vector();
  online_window_ = r.f64_vector();
  if (online_window_.size() > config_.window) {
    throw persist::CorruptData("LarPredictor: serialized window too long");
  }
  observed_count_ = static_cast<std::size_t>(r.u64());

  pending_forecast_.reset();
  if (r.boolean()) pending_forecast_ = r.f64();
  residuals_.reset();
  if (r.boolean()) {
    residuals_.emplace(std::max<std::size_t>(1, config_.uncertainty_window));
    load_windowed(r, *residuals_);
  }
  resolved_forecasts_ = static_cast<std::size_t>(r.u64());

  const auto trackers = static_cast<std::size_t>(r.u64());
  if (trackers != pool_.size()) {
    throw persist::CorruptData(
        "LarPredictor: serialized tracker count disagrees with pool");
  }
  const std::size_t horizon =
      config_.label_window == 0 ? config_.window : config_.label_window;
  online_label_trackers_.assign(pool_.size(), stats::WindowedMse(horizon));
  for (auto& tracker : online_label_trackers_) load_windowed(r, tracker);
  online_windows_learned_ = static_cast<std::size_t>(r.u64());

  const auto members = static_cast<std::size_t>(r.u64());
  if (members != pool_.size()) {
    throw persist::CorruptData(
        "LarPredictor: serialized pool size disagrees with config");
  }
  for (std::size_t p = 0; p < pool_.size(); ++p) pool_.at(p).load_state(r);
}

}  // namespace larp::core
