#include "core/rolling.hpp"

#include <algorithm>

#include "core/lar_predictor.hpp"
#include "selection/nws_selector.hpp"
#include "selection/selector.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::core {

RollingOriginResult rolling_origin_evaluate(
    std::span<const double> raw_series, const predictors::PredictorPool& pool,
    const RollingOriginConfig& config) {
  const std::size_t m = config.lar.window;
  if (config.initial_train < m + 2) {
    throw InvalidArgument("rolling_origin: initial_train must exceed window+1");
  }
  if (raw_series.size() < config.initial_train + 2) {
    throw InvalidArgument("rolling_origin: series shorter than initial_train+2");
  }
  const auto initial =
      raw_series.subspan(0, config.initial_train);
  if (stats::variance(initial) == 0.0) {
    throw StateError("rolling_origin: constant initial training prefix");
  }

  // The system under test: a LarPredictor operated exactly as deployed.
  LarPredictor lar(pool.clone(), config.lar);
  lar.train(initial);

  // Baseline battery: an independent pool clone walked in parallel, in raw
  // units, plus the NWS error trackers.
  predictors::PredictorPool baseline = pool.clone();
  baseline.fit_all(initial);
  baseline.reset_all();
  for (std::size_t i = 0; i < config.initial_train; ++i) {
    baseline.observe_all(raw_series[i]);
  }
  selection::CumulativeMseSelector nws(pool.size());
  selection::WindowedCumMseSelector wnws(pool.size(), config.nws_error_window);

  RollingOriginResult result;
  result.mse_single.assign(pool.size(), 0.0);
  result.expert_usage.assign(pool.size(), 0);
  std::vector<stats::RunningMse> single_mse(pool.size());
  stats::RunningMse lar_mse, oracle_mse, nws_mse, wnws_mse;

  std::size_t steps_since_retrain = 0;
  for (std::size_t t = config.initial_train; t < raw_series.size(); ++t) {
    const double actual = raw_series[t];
    const auto window = raw_series.subspan(t - m, m);

    // The deployed LAR: classify, run ONE expert.
    const auto forecast = lar.predict_next();
    lar_mse.add(forecast.value, actual);
    ++result.expert_usage[forecast.label];

    // The baselines: causal picks, then all-pool forecasts for bookkeeping.
    const std::size_t nws_pick = nws.select(window);
    const std::size_t wnws_pick = wnws.select(window);
    const auto forecasts = baseline.predict_all(window);
    nws_mse.add(forecasts[nws_pick], actual);
    wnws_mse.add(forecasts[wnws_pick], actual);
    oracle_mse.add(
        forecasts[selection::best_forecast_label(forecasts, actual)], actual);
    for (std::size_t p = 0; p < pool.size(); ++p) {
      single_mse[p].add(forecasts[p], actual);
    }

    // Feedback.
    nws.record(forecasts, actual);
    wnws.record(forecasts, actual);
    baseline.observe_all(actual);
    lar.observe(actual);
    ++result.steps;

    // Deterministic QA cadence: re-train on the freshest history.
    if (config.retrain_every > 0 && ++steps_since_retrain == config.retrain_every &&
        t + 1 + m < raw_series.size()) {
      const std::size_t start = t + 1 - std::min(t + 1, config.initial_train);
      const auto recent = raw_series.subspan(start, t + 1 - start);
      if (stats::variance(recent) > 0.0) {
        lar.retrain(recent);
        baseline.fit_all(recent);
        ++result.retrains;
      }
      steps_since_retrain = 0;
    }
  }

  result.mse_lar = lar_mse.value();
  result.mse_oracle = oracle_mse.value();
  result.mse_nws = nws_mse.value();
  result.mse_wnws = wnws_mse.value();
  for (std::size_t p = 0; p < pool.size(); ++p) {
    result.mse_single[p] = single_mse[p].value();
  }
  return result;
}

}  // namespace larp::core
