// Applicability assessment: the paper's §8 future-work item — "develop a
// quantitative method to assess the LARPredictor's applicability to time
// series predictions in other areas".
//
// Given a raw series and an expert pool, the assessor measures the three
// quantities that decide whether learning-aided selection can pay:
//
//   * oracle headroom  — how much MSE a perfect per-step selector would save
//     over the best single expert.  No headroom -> a single expert suffices
//     and the classification machinery is pure overhead;
//   * label dynamics   — how often the observed best predictor switches
//     (churn) and how evenly the classes share the trace (entropy).  A
//     static or single-class label sequence means there is nothing to adapt
//     to; a high-churn, balanced sequence is where NWS-style cumulative
//     selection fails and window classification can win;
//   * realized gain    — what the LARPredictor actually achieves under
//     cross-validation: selection accuracy and MSE relative to the best
//     single expert.
//
// The verdict condenses these into the recommendation a practitioner needs.
#pragma once

#include <span>
#include <string>

#include "core/experiment.hpp"

namespace larp::core {

enum class ApplicabilityVerdict {
  /// Degenerate input (constant series): nothing to predict.
  NotApplicable,
  /// The oracle shows little headroom over the best single expert; run that
  /// expert alone.
  SingleExpertSuffices,
  /// Headroom exists but the classifier cannot realize it on this series
  /// (low selection accuracy or negative realized gain).
  HeadroomUnrealized,
  /// Adaptive selection matches or beats the best single expert here.
  Recommended,
};

[[nodiscard]] const char* to_string(ApplicabilityVerdict verdict) noexcept;

struct ApplicabilityReport {
  ApplicabilityVerdict verdict = ApplicabilityVerdict::NotApplicable;

  /// 1 - oracle MSE / best single expert MSE, in [0, 1]; the upper bound on
  /// what any selection scheme over this pool can save.
  double oracle_headroom = 0.0;
  /// 1 - LAR MSE / best single expert MSE; negative when the classifier's
  /// mistakes cost more than its adaptivity gains.
  double realized_gain = 0.0;
  /// Cross-validated best-predictor forecasting accuracy of the classifier.
  double selection_accuracy = 0.0;
  /// Chance accuracy for this pool (1 / pool size), for comparison.
  double chance_accuracy = 0.0;
  /// Fraction of adjacent test steps whose observed-best label differs.
  double label_churn = 0.0;
  /// Normalized entropy (0..1) of the observed-best class shares.
  double label_entropy = 0.0;
  /// Fold-averaged MSEs backing the ratios above.
  double mse_oracle = 0.0;
  double mse_lar = 0.0;
  double mse_best_single = 0.0;
  std::size_t best_single_label = 0;

  /// One-paragraph human-readable justification of the verdict.
  std::string explanation;
};

struct ApplicabilityThresholds {
  /// Oracle headroom below this -> SingleExpertSuffices.
  double min_headroom = 0.05;
  /// Realized gain above this (>= 0 tolerates ties) -> Recommended.
  double min_realized_gain = -0.02;
};

/// Assesses one raw series under the given pipeline configuration and
/// cross-validation plan.  Deterministic for a fixed rng state.
[[nodiscard]] ApplicabilityReport assess_applicability(
    std::span<const double> raw_series, const predictors::PredictorPool& pool,
    const LarConfig& config, const ml::CrossValidationPlan& plan, Rng& rng,
    const ApplicabilityThresholds& thresholds = {});

}  // namespace larp::core
