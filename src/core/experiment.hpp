// Experiment runner: the machinery behind every table and figure of §7.
//
// evaluate_fold() walks one train/test split of one trace and scores, on the
// SAME test steps and pool forecasts:
//   * LAR           — the k-NN-selected expert (the paper's contribution),
//   * P-LAR         — the hindsight-best expert (oracle upper bound),
//   * Cum.MSE       — the NWS cumulative-MSE selection,
//   * W-Cum.MSE     — the NWS windowed variant (window 2 in Fig. 6),
//   * every single pool member (the LAST/AR/SW columns of Table 2).
//
// cross_validate() repeats it over the paper's ten random-split folds and
// averages.  Degenerate traces (zero variance, e.g. idle devices) are
// flagged instead of scored — these are the NaN cells of Table 3.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "ml/crossval.hpp"
#include "predictors/pool.hpp"
#include "util/rng.hpp"

namespace larp::core {

struct FoldOptions {
  /// Error window of the W-Cum.MSE baseline (Fig. 6 uses 2).
  std::size_t nws_error_window = 2;
  /// When true, the NWS baselines' error statistics accumulate over the
  /// training walk too (continuous-operation reading).  The default matches
  /// the paper's evaluation: every strategy is scored on the test half from
  /// the same starting line — the LAR's classifier is frozen at the split,
  /// and the NWS trackers start cold there (§7.2.2; see DESIGN.md §5).
  bool warm_nws_on_train = false;
};

/// Per-step and aggregate outcomes of one fold walk.
struct FoldResult {
  // Per-test-step series (aligned), for the Fig. 4/5 selection plots.
  std::vector<std::size_t> observed_best;  // hindsight best label per step
  std::vector<std::size_t> lar_choice;
  std::vector<std::size_t> nws_choice;
  std::vector<std::size_t> wnws_choice;
  std::vector<double> actuals;             // normalized test targets

  // Normalized test MSE per strategy.
  double mse_lar = 0.0;
  double mse_oracle = 0.0;
  double mse_nws = 0.0;
  double mse_wnws = 0.0;
  std::vector<double> mse_single;          // one per pool member

  // Best-predictor forecasting accuracy per causal strategy (§7.1).
  double lar_accuracy = 0.0;
  double nws_accuracy = 0.0;
  double wnws_accuracy = 0.0;

  [[nodiscard]] std::size_t steps() const noexcept { return actuals.size(); }
};

/// Walks one fold.  `split` follows ml::SplitFold semantics: [0, split)
/// trains, targets at indices >= split are test steps.  Throws
/// InvalidArgument when either side is too short to frame (the training side
/// needs window+1 points, the test side at least one target) and StateError
/// when the training half has zero variance (degenerate trace).
[[nodiscard]] FoldResult evaluate_fold(std::span<const double> raw_series,
                                       std::size_t split,
                                       const predictors::PredictorPool& pool,
                                       const LarConfig& config,
                                       const FoldOptions& options = {});

/// Fold-averaged outcomes of one trace.
struct TraceResult {
  bool degenerate = false;  // zero-variance trace -> NaN semantics (Table 3)
  std::size_t folds = 0;

  double mse_lar = 0.0;
  double mse_oracle = 0.0;
  double mse_nws = 0.0;
  double mse_wnws = 0.0;
  std::vector<double> mse_single;

  double lar_accuracy = 0.0;
  double nws_accuracy = 0.0;
  double wnws_accuracy = 0.0;

  /// Label of the single pool member with the lowest averaged MSE — the
  /// "observed best predictor" of Table 3.
  [[nodiscard]] std::size_t best_single_label() const;
  /// True when LAR matched or beat the best single member (Table 3's "*").
  [[nodiscard]] bool lar_beats_best_single() const;
  /// True when LAR beat the NWS cumulative-MSE selection (§7.2.2).
  [[nodiscard]] bool lar_beats_nws() const;
};

/// Runs the paper's repeated random-split cross-validation on one raw trace
/// (§7.2) and averages fold outcomes.  Returns a degenerate result for
/// zero-variance traces.
[[nodiscard]] TraceResult cross_validate(std::span<const double> raw_series,
                                         const predictors::PredictorPool& pool,
                                         const LarConfig& config,
                                         const ml::CrossValidationPlan& plan,
                                         Rng& rng,
                                         const FoldOptions& options = {});

}  // namespace larp::core
