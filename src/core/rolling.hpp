// Rolling-origin (walk-forward) evaluation: the deployment-faithful
// complement to the paper's random-split cross-validation (§7.2).
//
// The predictor trains on an initial prefix and then walks the rest of the
// series exactly as the Figure-1 prototype would: forecast one step, observe
// the realized value, and periodically re-train on the most recent history
// (the Quality-Assuror cadence, made deterministic).  The NWS baselines, the
// oracle and every single expert are scored on the same steps from a
// baseline pool walked in parallel.  Unlike evaluate_fold, everything runs
// in RAW units — this is the number a deployment would see.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "predictors/pool.hpp"

namespace larp::core {

struct RollingOriginConfig {
  LarConfig lar;
  /// Samples consumed before the first forecast (initial training set).
  std::size_t initial_train = 144;
  /// Re-train the LAR (and re-fit the baseline pool) on the most recent
  /// `initial_train` samples every this many steps; 0 = never re-train.
  std::size_t retrain_every = 48;
  /// Error window of the W-Cum.MSE baseline.
  std::size_t nws_error_window = 2;
};

struct RollingOriginResult {
  std::size_t steps = 0;
  std::size_t retrains = 0;

  // Raw-unit one-step MSE per strategy over the walked steps.
  double mse_lar = 0.0;
  double mse_oracle = 0.0;
  double mse_nws = 0.0;
  double mse_wnws = 0.0;
  std::vector<double> mse_single;

  /// How often the LAR ran each expert (sums to steps).
  std::vector<std::size_t> expert_usage;
};

/// Walks the series; throws InvalidArgument when the series is shorter than
/// initial_train + 2 or initial_train is too small for the window, and
/// StateError when the initial training prefix has zero variance.
[[nodiscard]] RollingOriginResult rolling_origin_evaluate(
    std::span<const double> raw_series, const predictors::PredictorPool& pool,
    const RollingOriginConfig& config);

}  // namespace larp::core
