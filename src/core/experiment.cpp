#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/framing.hpp"
#include "ml/metrics.hpp"
#include "ml/normalizer.hpp"
#include "selection/centroid_selector.hpp"
#include "selection/knn_selector.hpp"
#include "selection/nws_selector.hpp"
#include "selection/selector.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace larp::core {

FoldResult evaluate_fold(std::span<const double> raw_series, std::size_t split,
                         const predictors::PredictorPool& pool_prototype,
                         const LarConfig& config, const FoldOptions& options) {
  const std::size_t m = config.window;
  if (split < m + 1) {
    throw InvalidArgument("evaluate_fold: training side shorter than window+1");
  }
  if (raw_series.size() < split + 1) {
    throw InvalidArgument("evaluate_fold: no test targets after the split");
  }
  const auto train_raw = raw_series.subspan(0, split);
  if (stats::variance(train_raw) == 0.0) {
    throw StateError("evaluate_fold: zero-variance training data");
  }

  // 1. Normalize everything with training-derived coefficients (§6.2).
  ml::ZScoreNormalizer normalizer;
  normalizer.fit(train_raw);
  const std::vector<double> z = normalizer.transform(raw_series);

  // 2. Fit the pool's parametric members on the training half.
  predictors::PredictorPool pool = pool_prototype.clone();
  pool.fit_all(std::span<const double>(z.data(), split));
  pool.reset_all();

  // 3. Selector stable: LAR is built after the labeling walk; the NWS
  //    baselines accumulate error statistics as the walk proceeds.
  selection::CumulativeMseSelector nws(pool.size());
  selection::WindowedCumMseSelector wnws(pool.size(), options.nws_error_window);

  // The walk covers every supervised window of the whole series; windows
  // whose target index is < split are training steps (labeled for the
  // classifier), the rest are test steps.
  const std::size_t window_count = z.size() - m;
  std::vector<std::size_t> train_labels;
  train_labels.reserve(split - m);

  // Windowed-MSE label trackers (LarConfig::labeling; see config.hpp).
  const std::size_t label_window =
      config.label_window == 0 ? m : config.label_window;
  std::vector<stats::WindowedMse> label_trackers(
      pool.size(), stats::WindowedMse(label_window));

  FoldResult result;
  result.mse_single.assign(pool.size(), 0.0);
  std::vector<stats::RunningMse> single_mse(pool.size());
  stats::RunningMse lar_mse, oracle_mse, nws_mse, wnws_mse;
  std::size_t lar_hits = 0, nws_hits = 0, wnws_hits = 0;

  // LAR selector (and its PCA projection) is created when the training
  // phase ends.
  std::unique_ptr<selection::Selector> lar;
  std::optional<ml::Pca> fold_pca;

  // Prime pool online state with the first window.
  for (std::size_t i = 0; i < m; ++i) pool.observe_all(z[i]);

  for (std::size_t i = 0; i < window_count; ++i) {
    const std::size_t target_index = i + m;
    const auto window = std::span<const double>(z.data() + i, m);
    const double actual = z[target_index];
    const bool is_test = target_index >= split;

    if (is_test && !lar) {
      // Training phase just ended: fit PCA + classifier on the labeled
      // windows.
      const auto framed =
          ml::frame_supervised(std::span<const double>(z.data(), split), m);
      LARP_ASSERT(framed.windows.rows() == train_labels.size());
      fold_pca.emplace();
      fold_pca->fit(framed.windows, config.pca_policy());
      if (config.classifier == ClassifierKind::NearestCentroid) {
        ml::NearestCentroidClassifier classifier;
        classifier.fit(fold_pca->transform(framed.windows), train_labels);
        lar = std::make_unique<selection::CentroidSelector>(
            *fold_pca, std::move(classifier));
      } else {
        ml::KnnClassifier classifier(config.knn_k, config.knn_backend);
        classifier.fit(fold_pca->transform(framed.windows), train_labels);
        lar = std::make_unique<selection::KnnSelector>(*fold_pca,
                                                       std::move(classifier));
      }
    }

    // Causal selections BEFORE the actual value is revealed.
    std::size_t lar_pick = 0, nws_pick = 0, wnws_pick = 0;
    std::vector<double> lar_weights;
    if (is_test) {
      if (config.soft_vote) {
        lar_weights = lar->select_weights(window, pool.size());
        lar_pick = selection::argmin_label(lar_weights);
        double best_weight = -1.0;
        for (std::size_t p = 0; p < pool.size(); ++p) {
          if (lar_weights[p] > best_weight) {
            best_weight = lar_weights[p];
            lar_pick = p;
          }
        }
      } else {
        lar_pick = lar->select(window);
      }
      nws_pick = nws.select(window);
      wnws_pick = wnws.select(window);
    }

    // All pool members forecast (training: for labeling; testing: for the
    // oracle / single-member / baseline bookkeeping — the deployed LAR only
    // runs its pick, which predict_all subsumes for evaluation purposes).
    std::vector<double> window_values(window.begin(), window.end());
    if (config.predict_in_pca_space && fold_pca) {
      const auto projected = fold_pca->transform(window);
      window_values = fold_pca->inverse_transform(projected);
    }
    const auto forecasts = pool.predict_all(window_values);
    // Per-step hindsight best: defines the P-LAR oracle MSE.
    const std::size_t best = selection::best_forecast_label(forecasts, actual);

    // "Observed best predictor" under the configured labeling — the target
    // the classifier is trained on, the Fig. 4/5 top plot, and the reference
    // for the §7.1 forecasting-accuracy metric.
    std::size_t observed = best;
    if (config.labeling == Labeling::WindowMse) {
      for (std::size_t p = 0; p < pool.size(); ++p) {
        label_trackers[p].add(forecasts[p], actual);
      }
      std::vector<double> errors;
      errors.reserve(pool.size());
      for (const auto& tracker : label_trackers) errors.push_back(tracker.value());
      observed = selection::argmin_label(errors);
    }

    if (is_test) {
      result.observed_best.push_back(observed);
      result.lar_choice.push_back(lar_pick);
      result.nws_choice.push_back(nws_pick);
      result.wnws_choice.push_back(wnws_pick);
      result.actuals.push_back(actual);

      double lar_forecast = forecasts[lar_pick];
      if (config.soft_vote) {
        lar_forecast = 0.0;
        for (std::size_t p = 0; p < pool.size(); ++p) {
          lar_forecast += lar_weights[p] * forecasts[p];
        }
      }
      lar_mse.add(lar_forecast, actual);
      oracle_mse.add(forecasts[best], actual);
      nws_mse.add(forecasts[nws_pick], actual);
      wnws_mse.add(forecasts[wnws_pick], actual);
      for (std::size_t p = 0; p < pool.size(); ++p) {
        single_mse[p].add(forecasts[p], actual);
      }
      if (lar_pick == observed) ++lar_hits;
      if (nws_pick == observed) ++nws_hits;
      if (wnws_pick == observed) ++wnws_hits;
    } else {
      train_labels.push_back(observed);
    }

    // Post-step feedback.
    if (is_test || options.warm_nws_on_train) {
      nws.record(forecasts, actual);
      wnws.record(forecasts, actual);
    }
    pool.observe_all(actual);
  }

  LARP_ASSERT(!result.actuals.empty());
  result.mse_lar = lar_mse.value();
  result.mse_oracle = oracle_mse.value();
  result.mse_nws = nws_mse.value();
  result.mse_wnws = wnws_mse.value();
  for (std::size_t p = 0; p < pool.size(); ++p) {
    result.mse_single[p] = single_mse[p].value();
  }
  const double steps = static_cast<double>(result.actuals.size());
  result.lar_accuracy = static_cast<double>(lar_hits) / steps;
  result.nws_accuracy = static_cast<double>(nws_hits) / steps;
  result.wnws_accuracy = static_cast<double>(wnws_hits) / steps;
  return result;
}

std::size_t TraceResult::best_single_label() const {
  if (mse_single.empty()) throw StateError("TraceResult: no single-member MSEs");
  std::size_t best = 0;
  for (std::size_t i = 1; i < mse_single.size(); ++i) {
    if (mse_single[i] < mse_single[best]) best = i;
  }
  return best;
}

bool TraceResult::lar_beats_best_single() const {
  return mse_lar <= mse_single[best_single_label()];
}

bool TraceResult::lar_beats_nws() const { return mse_lar < mse_nws; }

TraceResult cross_validate(std::span<const double> raw_series,
                           const predictors::PredictorPool& pool,
                           const LarConfig& config,
                           const ml::CrossValidationPlan& plan, Rng& rng,
                           const FoldOptions& options) {
  TraceResult aggregate;
  aggregate.mse_single.assign(pool.size(), 0.0);

  if (stats::variance(raw_series) == 0.0) {
    aggregate.degenerate = true;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    aggregate.mse_lar = aggregate.mse_oracle = nan;
    aggregate.mse_nws = aggregate.mse_wnws = nan;
    std::fill(aggregate.mse_single.begin(), aggregate.mse_single.end(), nan);
    return aggregate;
  }

  // Both sides of every split must hold at least window+1 points.
  const auto folds = ml::make_random_split_folds(raw_series.size(), plan, rng,
                                                 config.window + 1);
  for (const auto& fold : folds) {
    FoldResult r;
    try {
      r = evaluate_fold(raw_series, fold.split, pool, config, options);
    } catch (const StateError&) {
      continue;  // constant training half: skip this fold
    }
    aggregate.mse_lar += r.mse_lar;
    aggregate.mse_oracle += r.mse_oracle;
    aggregate.mse_nws += r.mse_nws;
    aggregate.mse_wnws += r.mse_wnws;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      aggregate.mse_single[p] += r.mse_single[p];
    }
    aggregate.lar_accuracy += r.lar_accuracy;
    aggregate.nws_accuracy += r.nws_accuracy;
    aggregate.wnws_accuracy += r.wnws_accuracy;
    ++aggregate.folds;
  }

  if (aggregate.folds == 0) {
    // Every fold had a constant training half: treat as degenerate.
    aggregate.degenerate = true;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    aggregate.mse_lar = aggregate.mse_oracle = nan;
    aggregate.mse_nws = aggregate.mse_wnws = nan;
    std::fill(aggregate.mse_single.begin(), aggregate.mse_single.end(), nan);
    return aggregate;
  }

  const double n = static_cast<double>(aggregate.folds);
  aggregate.mse_lar /= n;
  aggregate.mse_oracle /= n;
  aggregate.mse_nws /= n;
  aggregate.mse_wnws /= n;
  for (double& v : aggregate.mse_single) v /= n;
  aggregate.lar_accuracy /= n;
  aggregate.nws_accuracy /= n;
  aggregate.wnws_accuracy /= n;
  return aggregate;
}

}  // namespace larp::core
