#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace larp::core {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw InvalidArgument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw InvalidArgument("TextTable: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  if (std::isnan(value)) return "NaN";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  if (std::isnan(fraction)) return "NaN";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
          << (c == 0 ? std::left : std::right) << row[c];
      out << std::right;
    }
    out << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string render_label_strip(const std::vector<std::size_t>& series,
                               const std::vector<std::string>& names,
                               std::size_t max_width) {
  if (names.empty()) throw InvalidArgument("render_label_strip: no class names");
  std::size_t name_width = 0;
  for (const auto& name : names) name_width = std::max(name_width, name.size());

  // Downsample to max_width columns by majority within each bucket.
  const std::size_t columns = std::min(series.size(), max_width);
  std::vector<std::size_t> sampled;
  sampled.reserve(columns);
  if (columns > 0) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::size_t lo = c * series.size() / columns;
      const std::size_t hi = std::max(lo + 1, (c + 1) * series.size() / columns);
      std::vector<std::size_t> counts(names.size(), 0);
      for (std::size_t i = lo; i < hi && i < series.size(); ++i) {
        if (series[i] < names.size()) ++counts[series[i]];
      }
      sampled.push_back(static_cast<std::size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin()));
    }
  }

  std::ostringstream os;
  for (std::size_t lane = 0; lane < names.size(); ++lane) {
    os << std::setw(static_cast<int>(name_width)) << names[lane] << " |";
    for (std::size_t c = 0; c < sampled.size(); ++c) {
      os << (sampled[c] == lane ? '#' : ' ');
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace larp::core
