// nws_comparison: head-to-head of the LARPredictor against the Network
// Weather Service selection model (§2, §7.2.2) on a bursty network trace.
//
// Both strategies pick from the same {LAST, AR, SW_AVG} pool on the same
// test steps; the example prints per-strategy MSE and selection accuracy,
// plus the oracle (P-LAR) upper bound, for several traces.
#include <cstdio>

#include "core/experiment.hpp"
#include "tracegen/catalog.hpp"

int main() {
  using namespace larp;

  core::LarConfig config;
  config.window = 5;
  const auto pool = predictors::make_paper_pool(config.window);
  ml::CrossValidationPlan plan;  // the paper's ten-fold random-split protocol

  const std::pair<const char*, const char*> traces[] = {
      {"VM2", "NIC1_received"}, {"VM2", "CPU_usedsec"},
      {"VM4", "NIC1_transmitted"}, {"VM4", "VD1_write"},
      {"VM5", "NIC2_received"},
  };

  std::printf("%-22s %10s %10s %10s %10s | %8s %8s\n", "trace", "P-LAR",
              "LAR", "Cum.MSE", "W-Cum.MSE", "acc(LAR)", "acc(NWS)");
  std::printf("%s\n", std::string(96, '-').c_str());

  double lar_wins = 0, total = 0;
  for (const auto& [vm, metric] : traces) {
    const auto trace = tracegen::make_trace(vm, metric, /*seed=*/2007);
    Rng rng(11);
    const auto result =
        core::cross_validate(trace.values, pool, config, plan, rng);
    if (result.degenerate) continue;
    std::printf("%-22s %10.4f %10.4f %10.4f %10.4f | %7.1f%% %7.1f%%\n",
                (std::string(vm) + "/" + metric).c_str(), result.mse_oracle,
                result.mse_lar, result.mse_nws, result.mse_wnws,
                100.0 * result.lar_accuracy, 100.0 * result.nws_accuracy);
    total += 1;
    if (result.lar_beats_nws()) lar_wins += 1;
  }
  std::printf("\nLAR beat the NWS cumulative-MSE selection on %.0f of %.0f "
              "traces (paper: 66.67%% of its trace set)\n",
              lar_wins, total);
  std::printf("note: MSEs are in normalized (z-score) units, matching the "
              "paper's Table 2.\n");
  return 0;
}
