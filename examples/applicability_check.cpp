// applicability_check: the paper's §8 future-work item made concrete — a
// quantitative assessment of whether learning-aided predictor selection is
// worth deploying on a given time series.
//
// Runs the assessor over four contrasting series: a regime-switching CPU
// trace (LAR territory), a pure random walk (LAST suffices), white noise
// (mean experts suffice) and an idle device (nothing to predict).
#include <cstdio>

#include "core/applicability.hpp"
#include "tracegen/catalog.hpp"

namespace {

std::vector<double> random_walk(std::size_t n, std::uint64_t seed) {
  larp::Rng rng(seed);
  std::vector<double> xs(n);
  double level = 100.0;
  for (auto& x : xs) {
    level += rng.normal(0.0, 1.0);
    x = level;
  }
  return xs;
}

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  larp::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(50.0, 5.0);
  return xs;
}

}  // namespace

int main() {
  using namespace larp;

  core::LarConfig config;
  config.window = 5;
  config.pca_components = 0;
  config.pca_min_variance = 0.85;
  const auto pool = predictors::make_paper_pool(config.window);
  ml::CrossValidationPlan plan;
  plan.folds = 5;

  struct Case {
    const char* name;
    std::vector<double> series;
  };
  const Case cases[] = {
      {"VM2 load15 (regime-switching CPU)",
       tracegen::make_trace("VM2", "load15", 2007, 500).values},
      {"random walk", random_walk(500, 11)},
      {"white noise", white_noise(500, 12)},
      {"idle device (constant)", std::vector<double>(500, 0.0)},
  };

  for (const auto& c : cases) {
    Rng rng(7);
    const auto report =
        core::assess_applicability(c.series, pool, config, plan, rng);
    std::printf("=== %s ===\n", c.name);
    std::printf("verdict: %s\n", core::to_string(report.verdict));
    if (report.verdict != core::ApplicabilityVerdict::NotApplicable) {
      std::printf("  best single expert:   %s (MSE %.4f)\n",
                  pool.name(report.best_single_label).c_str(),
                  report.mse_best_single);
      std::printf("  oracle headroom:      %5.1f%%  (P-LAR MSE %.4f)\n",
                  100.0 * report.oracle_headroom, report.mse_oracle);
      std::printf("  realized gain (LAR):  %5.1f%%  (LAR MSE %.4f)\n",
                  100.0 * report.realized_gain, report.mse_lar);
      std::printf("  selection accuracy:   %5.1f%%  (chance %.1f%%)\n",
                  100.0 * report.selection_accuracy,
                  100.0 * report.chance_accuracy);
      std::printf("  label churn/entropy:  %5.1f%% / %.1f%%\n",
                  100.0 * report.label_churn, 100.0 * report.label_entropy);
    }
    std::printf("  %s\n\n", report.explanation.c_str());
  }
  return 0;
}
