// trace_export: exports a catalog VM's trace suite to CSV and reads one
// series back for prediction — the interchange path for users who want to
// run the LARPredictor on externally collected traces.
//
// Usage: trace_export [VM id] [output.csv]
// Defaults: VM4, /tmp/larp_vm_traces.csv.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/lar_predictor.hpp"
#include "tracegen/catalog.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace larp;

  const std::string vm_id = argc > 1 ? argv[1] : "VM4";
  const std::string path = argc > 2 ? argv[2] : "/tmp/larp_vm_traces.csv";

  // ---- export: one column per metric, one row per sample ---------------
  const auto suite = tracegen::make_vm_suite(vm_id, /*seed=*/2007);
  csv::Table table;
  table.header.push_back("timestamp");
  for (const auto& [key, series] : suite) table.header.push_back(key.metric);

  const auto& axis = suite.front().second.axis;
  for (std::size_t i = 0; i < axis.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(axis.at(i)));
    for (const auto& [key, series] : suite) {
      std::ostringstream value;
      value << series.values[i];
      row.push_back(value.str());
    }
    table.rows.push_back(std::move(row));
  }
  {
    std::ofstream out(path);
    csv::write(out, table);
  }
  std::printf("exported %zu samples x %zu metrics of %s to %s\n",
              table.rows.size(), suite.size(), vm_id.c_str(), path.c_str());

  // ---- import: read one column back and predict on it -------------------
  const csv::Table loaded = csv::read_file(path);
  const auto cpu = loaded.numeric_column("CPU_usedsec");
  std::printf("re-imported CPU_usedsec: %zu samples, mean %.2f, sd %.2f\n",
              cpu.size(), stats::mean(cpu), stats::stddev(cpu));

  core::LarConfig config;
  config.window = 5;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(std::span<const double>(cpu.data(), cpu.size() / 2));
  stats::RunningMse mse;
  for (std::size_t t = cpu.size() / 2; t < cpu.size(); ++t) {
    const auto forecast = lar.predict_next();
    mse.add(forecast.value, cpu[t]);
    lar.observe(cpu[t]);
  }
  std::printf("LARPredictor on the re-imported series: raw MSE %.3f over %zu "
              "steps\n", mse.value(), cpu.size() - cpu.size() / 2);
  return 0;
}
