// Quickstart: train a LARPredictor on a synthetic CPU-load trace and make a
// few one-step forecasts.
//
//   1. generate a trace (stand-in for profiler output);
//   2. split it into a training prefix and an online remainder;
//   3. train — normalizer, AR fit, best-predictor labeling, PCA, k-NN;
//   4. walk the remainder: predict, compare, observe.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cmath>
#include <cstdio>
#include <string>

#include "core/lar_predictor.hpp"
#include "predictors/pool.hpp"
#include "tracegen/catalog.hpp"
#include "util/stats.hpp"

int main() {
  using namespace larp;

  // A day of five-minute CPU samples from the VM2 catalog entry.
  const auto trace = tracegen::make_trace("VM2", "CPU_usedsec", /*seed=*/42);
  std::printf("trace: VM2/CPU_usedsec, %zu samples at %llds\n",
              trace.size(), static_cast<long long>(trace.axis.step()));

  // The paper's pool {LAST, AR, SW_AVG} and configuration (m=5, n=2, k=3).
  core::LarConfig config;
  config.window = 5;
  core::LarPredictor lar(predictors::make_paper_pool(config.window), config);

  // Train on the first half.
  const std::size_t split = trace.size() / 2;
  lar.train(std::span<const double>(trace.values.data(), split));
  std::printf("trained on %zu samples -> %zu labeled windows\n", split,
              lar.training_labels().size());

  // Walk the second half online: one selected expert per step.
  const auto& pool = lar.pool();
  stats::RunningMse mse;
  std::size_t uses[3] = {0, 0, 0};
  for (std::size_t t = split; t < trace.size(); ++t) {
    const auto forecast = lar.predict_next();
    const double actual = trace.values[t];
    mse.add(forecast.value, actual);
    ++uses[forecast.label];
    if (t < split + 5) {
      std::printf("  t=%3zu  expert=%-6s  predicted=%7.2f  actual=%7.2f"
                  "  +/-%s\n",
                  t, pool.name(forecast.label).c_str(), forecast.value, actual,
                  std::isfinite(forecast.uncertainty)
                      ? std::to_string(forecast.uncertainty).c_str()
                      : "n/a");
    }
    lar.observe(actual);
  }

  std::printf("online steps: %zu, raw-unit MSE: %.3f\n", trace.size() - split,
              mse.value());
  std::printf("expert usage: LAST=%zu AR=%zu SW_AVG=%zu\n", uses[0], uses[1],
              uses[2]);
  return 0;
}
