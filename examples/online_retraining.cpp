// online_retraining: exercises the Prediction Quality Assuror (§3.2).
//
// A workload changes character mid-run (smooth -> violent regime).  The QA
// audits the prediction database on a cadence; when the rolling MSE breaches
// the threshold it orders the LARPredictor to re-train on recent data.  The
// example prints the audit trail so the breach and recovery are visible.
#include <cstdio>

#include "monitor/agent.hpp"
#include "monitor/host_model.hpp"
#include "qa/prediction_service.hpp"
#include "tracegen/models.hpp"

namespace {

// A guest whose CPU jumps to a different, noisier regime at a set time.
// Implemented as two models swapped manually between monitoring phases.
std::unique_ptr<larp::tracegen::MetricModel> calm_cpu() {
  larp::tracegen::ArProcess::Params p;
  p.coefficients = {0.9};
  p.mean = 30.0;
  p.noise_sigma = 1.0;
  p.clamp_max = 100.0;
  return std::make_unique<larp::tracegen::ArProcess>(p);
}

std::unique_ptr<larp::tracegen::MetricModel> wild_cpu() {
  larp::tracegen::OnOffBurst::Params p;
  p.off_level = 10.0;
  p.off_noise = 2.0;
  p.pareto_scale = 50.0;
  p.pareto_shape = 1.6;
  p.p_enter_on = 0.2;
  p.p_exit_on = 0.3;
  return std::make_unique<larp::tracegen::OnOffBurst>(p);
}

}  // namespace

int main() {
  using namespace larp;

  tsdb::RoundRobinDatabase perf_db(tsdb::make_vmkusage_config());
  monitor::HostServer host(200.0);
  monitor::GuestVm guest("VM1");
  guest.set_metric_model("CPU_usedsec", calm_cpu());
  host.add_guest(std::move(guest));
  monitor::MonitoringAgent agent(host, perf_db);
  Rng rng(99);
  const tsdb::SeriesKey key{"VM1", "cpu", "CPU_usedsec"};

  // Calm history, then train.
  Timestamp now = agent.run(0, 10 * 60, rng);
  qa::ServiceConfig config;
  config.lar.window = 5;
  config.interval = kFiveMinutes;
  config.train_samples = 96;
  config.audit_every = 6;
  // The prediction DB stores raw (de-normalized) forecasts, so the audit
  // threshold is in raw units: the calm AR(1) regime predicts with raw MSE
  // around 5, the bursty regime with hundreds.
  config.quality.mse_threshold = 25.0;
  config.quality.audit_window = 24;
  config.quality.min_records = 12;
  qa::PredictionService service(perf_db, predictors::make_paper_pool(5), config);
  service.train(key);
  std::printf("phase 1: trained on calm AR(1) CPU (raw-MSE threshold %.1f)\n\n",
              config.quality.mse_threshold);

  const auto run_phase = [&](const char* label, int minutes) {
    const std::size_t retrains_before = service.retrains();
    now = agent.run(now, minutes, rng);
    (void)service.advance(key);
    const auto audit_mse = service.prediction_db().audit_mse(
        key, now - 24 * kFiveMinutes, now + kFiveMinutes);
    std::printf("%-28s audits=%zu  retrains=%zu  recent raw MSE=%s\n", label,
                service.quality_assuror().audits_performed(),
                service.retrains(),
                audit_mse ? std::to_string(*audit_mse).c_str() : "n/a");
    return service.retrains() - retrains_before;
  };

  (void)run_phase("phase 1: calm continues", 2 * 60);

  // Regime change: swap the CPU model under the monitor's feet.
  // (HostServer owns guests by value, so we rebuild the host.)
  std::printf("\n--- workload regime change: calm -> bursty ---\n\n");
  monitor::HostServer wild_host(200.0);
  monitor::GuestVm wild_guest("VM1");
  wild_guest.set_metric_model("CPU_usedsec", wild_cpu());
  wild_host.add_guest(std::move(wild_guest));
  monitor::MonitoringAgent wild_agent(wild_host, perf_db);
  const auto run_wild = [&](const char* label, int minutes) {
    const std::size_t before = service.retrains();
    now = wild_agent.run(now, minutes, rng);
    (void)service.advance(key);
    std::printf("%-28s audits=%zu  retrains=%zu\n", label,
                service.quality_assuror().audits_performed(),
                service.retrains());
    return service.retrains() - before;
  };

  std::size_t triggered = 0;
  for (int phase = 0; phase < 4; ++phase) {
    char label[64];
    std::snprintf(label, sizeof label, "phase 2.%d: bursty", phase + 1);
    triggered += run_wild(label, 60);
  }

  std::printf("\nre-trainings triggered by the QA after the regime change: "
              "%zu\n", triggered);
  std::printf("(the paper's QA component: audit rolling MSE, re-train on "
              "breach — §3.2)\n");
  return triggered > 0 ? 0 : 1;  // the demo is only meaningful if QA fired
}
