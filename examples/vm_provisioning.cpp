// vm_provisioning: the paper's motivating scenario (§1, §3) — use resource
// forecasts to drive dynamic VM provisioning decisions on a contended host.
//
// A simulated ESX-style host runs the five catalog VMs.  The monitoring
// agent samples every minute into a round-robin database; the
// PredictionService trains one LARPredictor per VM CPU stream and, each
// five-minute tick, a toy resource manager compares the forecast demand
// against the host capacity and prints scale-up/scale-down advice.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "monitor/agent.hpp"
#include "monitor/host_model.hpp"
#include "qa/prediction_service.hpp"
#include "tracegen/catalog.hpp"

int main() {
  using namespace larp;

  // ---- testbed: one host, five guests, vmkusage-style monitoring --------
  tsdb::RoundRobinDatabase perf_db(tsdb::make_vmkusage_config());
  monitor::HostServer host(/*cpu_capacity=*/250.0);
  std::vector<std::string> vm_ids;
  for (const auto& vm : tracegen::paper_vms()) {
    host.add_guest(monitor::make_catalog_guest(vm.vm_id));
    vm_ids.push_back(vm.vm_id);
  }
  monitor::MonitoringAgent agent(host, perf_db);
  Rng rng(7);

  // ---- bootstrap: 12 hours of history, then train per-VM predictors -----
  Timestamp now = agent.run(0, 12 * 60, rng);

  qa::ServiceConfig service_config;
  service_config.lar.window = 5;
  service_config.interval = kFiveMinutes;
  service_config.train_samples = 120;
  qa::PredictionService service(perf_db, predictors::make_paper_pool(5),
                                service_config);
  for (const auto& vm : vm_ids) {
    service.train(tsdb::SeriesKey{vm, "cpu", "CPU_usedsec"});
  }
  std::printf("trained CPU predictors for %zu VMs on 12h of history\n\n",
              vm_ids.size());

  // ---- online loop: monitor 5 minutes, forecast, decide -----------------
  std::printf("%-8s", "t(min)");
  for (const auto& vm : vm_ids) std::printf("  %8s", vm.c_str());
  std::printf("  %10s  %s\n", "sum(fcst)", "advice");

  for (int tick = 0; tick < 12; ++tick) {
    now = agent.run(now, 5, rng);
    double forecast_total = 0.0;
    std::vector<double> forecasts;
    for (const auto& vm : vm_ids) {
      const tsdb::SeriesKey key{vm, "cpu", "CPU_usedsec"};
      (void)service.advance(key);
      const auto pending = service.pending_forecast(key);
      const double value = pending ? pending->value : 0.0;
      // A risk-aware manager would provision for value + k * uncertainty;
      // here the one-sigma margin joins the forecast in the total.
      const double margin =
          pending && std::isfinite(pending->uncertainty) ? pending->uncertainty
                                                         : 0.0;
      forecasts.push_back(value);
      forecast_total += value + 0.5 * margin;
    }
    const char* advice =
        forecast_total > host.cpu_capacity() * 0.9
            ? "SCALE UP: forecast demand near capacity"
        : forecast_total < host.cpu_capacity() * 0.4
            ? "scale down: headroom available"
            : "steady";
    std::printf("%-8lld", static_cast<long long>(now / kMinute));
    for (double f : forecasts) std::printf("  %8.1f", f);
    std::printf("  %10.1f  %s\n", forecast_total, advice);
  }

  std::printf("\npredictions stored: %zu; QA audits: %zu; re-trainings: %zu\n",
              service.prediction_db().size(),
              service.quality_assuror().audits_performed(), service.retrains());
  return 0;
}
