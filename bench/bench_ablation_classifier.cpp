// Ablation: classification algorithm of the selector (§5: "our methodology
// may be generally used with other types of classification algorithms").
// Compares the paper's 3-NN (brute force and the §7.3 kd-tree backend, which
// must agree exactly) against the nearest-centroid classifier.
#include <iostream>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: selector classifier",
                "3-NN (brute / kd-tree) vs nearest centroid");

  struct Variant {
    std::string label;
    core::ClassifierKind kind;
    ml::KnnBackend backend;
  };
  const std::vector<Variant> variants = {
      {"3-NN, brute force (paper)", core::ClassifierKind::Knn,
       ml::KnnBackend::BruteForce},
      {"3-NN, soft vote [16]", core::ClassifierKind::Knn,
       ml::KnnBackend::BruteForce},
      {"3-NN, kd-tree (§7.3)", core::ClassifierKind::Knn,
       ml::KnnBackend::KdTree},
      {"nearest centroid", core::ClassifierKind::NearestCentroid,
       ml::KnnBackend::BruteForce},
  };

  std::vector<std::pair<std::string, std::string>> grid;
  for (const auto& vm : tracegen::paper_vms()) {
    for (const auto& metric : tracegen::paper_metrics()) {
      grid.emplace_back(vm.vm_id, metric);
    }
  }

  core::TextTable table(
      {"classifier", "avg accuracy", "avg LAR MSE", ">= best single"});
  for (const auto& variant : variants) {
    const auto results = parallel_map(grid.size(), [&](std::size_t i) {
      const auto& [vm, metric] = grid[i];
      const auto trace = tracegen::make_trace(vm, metric, /*seed=*/6);
      auto config = bench::paper_config(vm);
      config.classifier = variant.kind;
      config.knn_backend = variant.backend;
      config.soft_vote = variant.label.find("soft") != std::string::npos;
      const auto pool = predictors::make_paper_pool(config.window);
      ml::CrossValidationPlan plan;
      plan.folds = 5;
      Rng rng(99);
      return core::cross_validate(trace.values, pool, config, plan, rng);
    });
    double acc = 0.0, mse = 0.0;
    int beats = 0, scored = 0;
    for (const auto& r : results) {
      if (r.degenerate) continue;
      ++scored;
      acc += r.lar_accuracy;
      mse += r.mse_lar;
      if (r.lar_beats_best_single()) ++beats;
    }
    table.add_row({variant.label, core::TextTable::pct(acc / scored),
                   core::TextTable::num(mse / scored),
                   core::TextTable::pct(double(beats) / scored)});
  }
  table.print(std::cout);

  std::printf("\nexpected shape: brute-force and kd-tree rows are IDENTICAL\n"
              "(same exact neighbours; asserted in tests); the centroid\n"
              "classifier trades a little accuracy for O(P) queries — its\n"
              "linear per-class boundary cannot carve the multi-modal label\n"
              "regions the k-NN handles.  Soft voting keeps the hard vote's\n"
              "accuracy but hedges split votes by weighting the voted\n"
              "experts' forecasts — lower MSE and a higher >=best-single\n"
              "rate at the cost of running up to k experts per step (the\n"
              "probability-based voting strategy of the paper's §2 [16]).\n");
  return 0;
}
