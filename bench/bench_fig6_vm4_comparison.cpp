// Figure 6: predictor performance comparison for VM4 — per-metric MSE of the
// perfect LARPredictor (P-LARP), the k-NN LARPredictor (Knn-LARP), the NWS
// cumulative-MSE selector (Cum.MSE), and the windowed variant with error
// window 2 (W-Cum.MSE).
//
// The paper plots the four bars per metric index 1..12; this binary prints
// the same series as a table plus an ASCII bar chart per metric.  Shape to
// check: P-LARP lowest everywhere; Knn-LARP below Cum.MSE on most metrics.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace larp;
  bench::banner("Figure 6", "predictor performance comparison (VM4)");

  const auto& metrics = tracegen::paper_metrics();
  core::TextTable table(
      {"#", "metric", "P-LARP", "Knn-LARP", "Cum.MSE", "W-Cum.MSE"});

  std::vector<core::TraceResult> results;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto result = bench::run_trace("VM4", metrics[i], /*seed=*/4);
    results.push_back(result);
    table.add_row({std::to_string(i + 1), metrics[i],
                   core::TextTable::num(result.mse_oracle),
                   core::TextTable::num(result.mse_lar),
                   core::TextTable::num(result.mse_nws),
                   core::TextTable::num(result.mse_wnws)});
  }
  table.print(std::cout);

  // ASCII bars, normalized per metric to the worst strategy.
  std::printf("\nper-metric bars (P=P-LARP K=Knn-LARP C=Cum.MSE W=W-Cum.MSE):\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& r = results[i];
    if (r.degenerate) {
      std::printf("%2zu %-18s NaN (degenerate trace)\n", i + 1,
                  metrics[i].c_str());
      continue;
    }
    const double worst =
        std::max({r.mse_oracle, r.mse_lar, r.mse_nws, r.mse_wnws, 1e-12});
    const auto bar = [&](char tag, double value) {
      const int len = static_cast<int>(40.0 * value / worst + 0.5);
      std::printf("   %c %s %.4f\n", tag, std::string(len, '#').c_str(), value);
    };
    std::printf("%2zu %-18s\n", i + 1, metrics[i].c_str());
    bar('P', r.mse_oracle);
    bar('K', r.mse_lar);
    bar('C', r.mse_nws);
    bar('W', r.mse_wnws);
  }

  int knn_beats_nws = 0, scored = 0;
  double oracle_sum = 0.0, nws_sum = 0.0;
  for (const auto& r : results) {
    if (r.degenerate) continue;
    ++scored;
    if (r.mse_lar < r.mse_nws) ++knn_beats_nws;
    oracle_sum += r.mse_oracle;
    nws_sum += r.mse_nws;
  }
  std::printf("\nKnn-LARP beat Cum.MSE on %d of %d VM4 metrics (paper: "
              "66.67%% across its trace set).\n", knn_beats_nws, scored);
  std::printf("P-LARP average MSE is %.1f%% below Cum.MSE (paper: 18.6%% "
              "lower in average).\n",
              100.0 * (1.0 - oracle_sum / nws_sum));
  return 0;
}
