// Table 1: the performance metric list (§3.2) — rendered together with the
// measured statistical character of each metric class across the synthetic
// catalog, which is the substitution's validity evidence: every class must
// exhibit the character the paper's testbed produced.
#include <iostream>

#include "bench_common.hpp"
#include "tracegen/characterize.hpp"
#include "util/stats.hpp"

int main() {
  using namespace larp;
  bench::banner("Table 1", "performance metric list + measured trace character");

  struct MetricDoc {
    const char* metric;
    const char* description;
  };
  const MetricDoc docs[] = {
      {"CPU_usedsec", "physical CPU time consumed by the virtual machine"},
      {"CPU_ready", "time the VM was ready but could not get scheduled"},
      {"Memory_size", "current amount of memory the VM has"},
      {"Memory_swapped", "swap space used by the VM"},
      {"NIC1_received", "packets/MBytes per second received on NIC 1"},
      {"NIC1_transmitted", "packets/MBytes per second transmitted on NIC 1"},
      {"NIC2_received", "packets/MBytes per second received on NIC 2"},
      {"NIC2_transmitted", "packets/MBytes per second transmitted on NIC 2"},
      {"VD1_read", "I/Os and KBytes per second read from virtual disk 1"},
      {"VD1_write", "I/Os and KBytes per second written to virtual disk 1"},
      {"VD2_read", "I/Os and KBytes per second read from virtual disk 2"},
      {"VD2_write", "I/Os and KBytes per second written to virtual disk 2"},
  };

  core::TextTable table({"metric", "description", "median acf1", "median H",
                         "median spike", "families (5 VMs)"});
  for (const auto& doc : docs) {
    std::vector<double> acf1s, hursts, spikes;
    std::string families;
    for (const auto& vm : tracegen::paper_vms()) {
      const auto trace = tracegen::make_trace(vm.vm_id, doc.metric, /*seed=*/6);
      const auto c = tracegen::characterize(trace.values);
      if (!families.empty()) families += '/';
      families += c.family();
      if (c.constant) continue;
      acf1s.push_back(c.acf1);
      hursts.push_back(c.hurst);
      spikes.push_back(c.spike_ratio);
    }
    table.add_row({doc.metric, doc.description,
                   core::TextTable::num(stats::median(acf1s), 2),
                   core::TextTable::num(stats::median(hursts), 2),
                   core::TextTable::num(stats::median(spikes), 1), families});
  }
  table.print(std::cout);

  std::printf("\nvalidity checks for the trace substitution (DESIGN.md §2):\n"
              "CPU rows are persistent (acf1/H high — Dinda's host-load\n"
              "character); NIC rows are spiky (high spike ratio) with idle\n"
              "cells on unattached devices; memory rows are near-walks\n"
              "(acf1 ~ 1); disk rows sit between.\n");
  return 0;
}
