// Table 2: normalized prediction MSE statistics for all twelve resources of
// VM1 (168-hour trace, 30-minute interval, prediction order 16).
//
// Columns match the paper: P-LAR (oracle), LAR (k-NN), LAST, AR, SW.  The
// per-row winner among {LAR, LAST, AR, SW} is marked with '*' (the paper
// bolds it).  Absolute values differ from the paper (synthetic traces); the
// shape to check is the column ordering: P-LAR <= everything, and LAR
// competitive with the best single expert per row.
#include <iostream>

#include "bench_common.hpp"

namespace {

// Renders one VM's normalized-MSE table; returns {lar_best, scored} rows.
std::pair<int, int> print_vm_table(const std::string& vm_id) {
  using namespace larp;
  const auto& spec = tracegen::vm_spec(vm_id);
  std::printf("--- %s (%s; %zu samples @ %llds, prediction order %zu) ---\n",
              vm_id.c_str(), spec.description.c_str(), spec.samples,
              static_cast<long long>(spec.interval),
              bench::paper_config(vm_id).window);

  core::TextTable table({"Perf.Metrics", "P-LAR", "LAR", "LAST", "AR", "SW"});
  int lar_best_rows = 0, scored_rows = 0;
  for (const auto& metric : tracegen::paper_metrics()) {
    const auto result = bench::run_trace(vm_id, metric, /*seed=*/1);

    // Winner among the causal strategies (matches the paper's bold italics).
    const double candidates[4] = {result.mse_lar, result.mse_single[0],
                                  result.mse_single[1], result.mse_single[2]};
    int winner = -1;
    if (!result.degenerate) {
      winner = 0;
      for (int i = 1; i < 4; ++i) {
        if (candidates[i] < candidates[winner]) winner = i;
      }
      ++scored_rows;
      if (winner == 0) ++lar_best_rows;
    }
    const auto cell = [&](double value, int column) {
      std::string text = core::TextTable::num(value);
      if (column == winner) text += "*";
      return text;
    };
    table.add_row({metric, core::TextTable::num(result.mse_oracle),
                   cell(result.mse_lar, 0), cell(result.mse_single[0], 1),
                   cell(result.mse_single[1], 2),
                   cell(result.mse_single[2], 3)});
  }
  table.print(std::cout);
  std::printf("\n");
  return {lar_best_rows, scored_rows};
}

}  // namespace

int main() {
  using namespace larp;
  bench::banner("Table 2",
                "normalized prediction MSE statistics per VM (the paper "
                "prints VM1 as its sample; the full artifact covers all five)");

  int lar_best = 0, scored = 0;
  for (const auto& vm : tracegen::paper_vms()) {
    const auto [best, rows] = print_vm_table(vm.vm_id);
    lar_best += best;
    scored += rows;
  }

  std::printf("'*' marks the lowest MSE among the causal strategies "
              "(LAR/LAST/AR/SW); P-LAR is the oracle lower bound;\nNaN rows "
              "are idle devices (zero variance).\n");
  std::printf("LAR won %d of %d scored rows across the five VMs.\n", lar_best,
              scored);
  std::printf("paper reference (VM1): P-LAR is always lowest; AR wins most "
              "rows among single models;\nLAR tracks the per-row best single "
              "model closely (e.g. paper row CPU_usedsec: P-LAR 0.6976,\n"
              "LAR 0.9508, LAST 1.1436, AR 0.9456, SW 1.0352).\n");
  return 0;
}
