// Ablation: neighbour count k of the classifier (paper fixes k = 3; §8 asks
// how to improve classification accuracy).  Sweeps k over a mixed trace set
// and reports selection accuracy and LAR MSE per k.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: k-NN neighbour count",
                "selection accuracy and MSE vs k (paper uses k=3)");

  const std::vector<std::pair<std::string, std::string>> traces = {
      {"VM2", "CPU_usedsec"}, {"VM2", "NIC1_received"},
      {"VM4", "CPU_usedsec"}, {"VM4", "VD1_write"},
      {"VM5", "NIC2_received"}, {"VM3", "CPU_usedsec"},
  };

  core::TextTable table({"k", "avg accuracy", "avg LAR MSE", "avg P-LAR MSE"});
  for (std::size_t k : {1u, 3u, 5u, 7u, 9u, 15u}) {
    double acc = 0.0, mse = 0.0, oracle = 0.0;
    int scored = 0;
    for (const auto& [vm, metric] : traces) {
      const auto trace = tracegen::make_trace(vm, metric, /*seed=*/8);
      auto config = bench::paper_config(vm);
      config.knn_k = k;
      const auto pool = predictors::make_paper_pool(config.window);
      ml::CrossValidationPlan plan;
      plan.folds = 5;
      Rng rng(k * 101 + 5);
      const auto result =
          core::cross_validate(trace.values, pool, config, plan, rng);
      if (result.degenerate) continue;
      acc += result.lar_accuracy;
      mse += result.mse_lar;
      oracle += result.mse_oracle;
      ++scored;
    }
    table.add_row({std::to_string(k), core::TextTable::pct(acc / scored),
                   core::TextTable::num(mse / scored),
                   core::TextTable::num(oracle / scored)});
  }
  table.print(std::cout);
  std::printf("\nexpected shape: small odd k (the paper's 3) is competitive;\n"
              "k=1 is noisier, very large k oversmooths toward the majority\n"
              "class.  P-LAR is k-independent (oracle).\n");
  return 0;
}
