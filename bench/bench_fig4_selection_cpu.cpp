// Figure 4: best-predictor selection for trace VM2_load15 — CPU fifteen-
// minute load average over a 12-hour period at 5-minute samples.
//
// The paper's figure has three step plots: the observed best predictor, the
// LARPredictor's k-NN selection, and the NWS cumulative-MSE selection.
// This binary reproduces them as ASCII strips (classes 1-LAST, 2-AR,
// 3-SW_AVG) plus the agreement statistics.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "ml/metrics.hpp"
#include "util/csv.hpp"

// Optional argv[1]: path for a CSV of the three label series (plotting).
int main(int argc, char** argv) {
  using namespace larp;
  bench::banner("Figure 4", "best-predictor selection, trace VM2_load15");

  // 12 h display window + 12 h of training history at 5-minute samples.
  const std::size_t display = 144;
  const auto trace = tracegen::make_trace("VM2", "load15", /*seed=*/2007,
                                          /*samples=*/2 * display);
  const auto config = bench::paper_config("VM2");
  const auto pool = predictors::make_paper_pool(config.window);
  const auto fold =
      core::evaluate_fold(trace.values, display, pool, config);

  const std::vector<std::string> names{"1-LAST", "2-AR", "3-SW_AVG"};
  std::printf("observed best predictor (top plot):\n%s\n",
              core::render_label_strip(fold.observed_best, names).c_str());
  std::printf("LARPredictor k-NN selection (middle plot):\n%s\n",
              core::render_label_strip(fold.lar_choice, names).c_str());
  std::printf("NWS cumulative-MSE selection (bottom plot):\n%s\n",
              core::render_label_strip(fold.nws_choice, names).c_str());

  // Per-class usage table.
  core::TextTable usage({"class", "observed", "LAR", "NWS"});
  for (std::size_t c = 0; c < 3; ++c) {
    const auto count = [&](const std::vector<std::size_t>& xs) {
      std::size_t n = 0;
      for (std::size_t x : xs) n += (x == c);
      return std::to_string(n);
    };
    usage.add_row({names[c], count(fold.observed_best), count(fold.lar_choice),
                   count(fold.nws_choice)});
  }
  usage.print(std::cout);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    csv::write_row(out, {"step", "observed_best", "lar", "nws"});
    for (std::size_t i = 0; i < fold.steps(); ++i) {
      csv::write_row(out, {std::to_string(i),
                           std::to_string(fold.observed_best[i] + 1),
                           std::to_string(fold.lar_choice[i] + 1),
                           std::to_string(fold.nws_choice[i] + 1)});
    }
    std::printf("\nwrote label series (paper class numbering) to %s\n", argv[1]);
  }

  std::printf("\nselection accuracy vs observed best:  LAR %.2f%%   NWS %.2f%%\n",
              100.0 * fold.lar_accuracy, 100.0 * fold.nws_accuracy);
  std::printf("(paper: the LAR adapts selection to the changing workload; its\n"
              " average accuracy across all traces is 55.98%%, +20.18 points\n"
              " over the NWS selector — see bench_headline_stats)\n");
  return 0;
}
