// Ablation: best-predictor labeling rule.  The paper states two readings
// (DESIGN.md §5): §7.2.1 labels each training window with the expert whose
// one-step forecast had the smallest ABSOLUTE ERROR; §6.1/Fig. 3 label with
// the expert of least MSE over the window.  This sweep quantifies the
// trade-off across labeling horizons on the full trace grid:
//   * per-step labels are noisy wherever experts are near-tied, which
//     poisons the classifier;
//   * longer MSE horizons smooth the labels (and the "observed best" target
//     the accuracy is measured against), raising the MSE-level statistics
//     while shrinking LAR's accuracy advantage over the NWS selector.
#include <iostream>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: labeling rule",
                "per-step |error| vs window-MSE labels, several horizons");

  struct Variant {
    std::string label;
    core::Labeling labeling;
    std::size_t window;
  };
  const std::vector<Variant> variants = {
      {"per-step |error| (§7.2.1)", core::Labeling::StepAbsoluteError, 0},
      {"window MSE, horizon m (§6.1)", core::Labeling::WindowMse, 0},
      {"window MSE, horizon 16", core::Labeling::WindowMse, 16},
      {"window MSE, horizon 32", core::Labeling::WindowMse, 32},
  };

  core::TextTable table({"labeling", "LAR acc", "NWS acc", "gap",
                         ">= best single", "beats NWS"});
  for (const auto& variant : variants) {
    std::vector<std::pair<std::string, std::string>> grid;
    for (const auto& vm : tracegen::paper_vms()) {
      for (const auto& metric : tracegen::paper_metrics()) {
        grid.emplace_back(vm.vm_id, metric);
      }
    }
    const auto results = parallel_map(grid.size(), [&](std::size_t i) {
      const auto& [vm, metric] = grid[i];
      const auto trace = tracegen::make_trace(vm, metric, /*seed=*/6);
      auto config = bench::paper_config(vm);
      config.labeling = variant.labeling;
      config.label_window = variant.window;
      const auto pool = predictors::make_paper_pool(config.window);
      ml::CrossValidationPlan plan;
      plan.folds = 5;
      Rng rng(99);
      return core::cross_validate(trace.values, pool, config, plan, rng);
    });

    double lar_acc = 0.0, nws_acc = 0.0;
    int beats_single = 0, beats_nws = 0, scored = 0;
    for (const auto& r : results) {
      if (r.degenerate) continue;
      ++scored;
      lar_acc += r.lar_accuracy;
      nws_acc += r.nws_accuracy;
      if (r.lar_beats_best_single()) ++beats_single;
      if (r.lar_beats_nws()) ++beats_nws;
    }
    lar_acc /= scored;
    nws_acc /= scored;
    table.add_row(
        {variant.label, core::TextTable::pct(lar_acc),
         core::TextTable::pct(nws_acc),
         core::TextTable::num((lar_acc - nws_acc) * 100.0, 1) + "pt",
         core::TextTable::pct(double(beats_single) / scored),
         core::TextTable::pct(double(beats_nws) / scored)});
  }
  table.print(std::cout);

  std::printf("\npaper anchors: LAR accuracy 55.98%%, +20.18pt over NWS;\n"
              "44.23%% of traces at/above the best single expert; 66.67%%\n"
              "beating the NWS selection.  The window-MSE readings trade the\n"
              "accuracy gap against the MSE-level statistics; the default\n"
              "configuration uses horizon m (the §6.1 literal reading).\n");
  return 0;
}
