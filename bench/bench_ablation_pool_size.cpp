// Ablation: predictor pool composition (§7.3 and the §8 future-work plan to
// "incorporate more prediction models").  Compares the paper trio with the
// extended NWS/SC'03/CCGrid'06 battery, as pool size grows.
#include <iostream>

#include "bench_common.hpp"
#include "predictors/adaptive_window.hpp"
#include "predictors/ewma.hpp"
#include "predictors/median_window.hpp"
#include "predictors/polyfit.hpp"
#include "predictors/running_mean.hpp"
#include "predictors/tendency.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: predictor pool size",
                "paper trio vs progressively larger expert pools");

  const std::vector<std::pair<std::string, std::string>> traces = {
      {"VM2", "CPU_usedsec"}, {"VM2", "NIC1_received"},
      {"VM4", "NIC1_transmitted"}, {"VM4", "VD1_write"},
      {"VM5", "CPU_usedsec"},
  };

  // Progressive pools: each adds experts to the previous one.
  struct PoolSpec {
    std::string label;
    std::function<predictors::PredictorPool(std::size_t)> make;
  };
  const std::vector<PoolSpec> pools = {
      {"paper trio (LAST, AR, SW_AVG)",
       [](std::size_t m) { return predictors::make_paper_pool(m); }},
      {"trio + EWMA(0.2) + MEDIAN",
       [](std::size_t m) {
         auto pool = predictors::make_paper_pool(m);
         pool.add(std::make_unique<predictors::Ewma>(0.2));
         pool.add(std::make_unique<predictors::MedianWindow>());
         return pool;
       }},
      {"trio + tendency + poly-fit",
       [](std::size_t m) {
         auto pool = predictors::make_paper_pool(m);
         pool.add(std::make_unique<predictors::Tendency>());
         pool.add(std::make_unique<predictors::PolynomialFit>(2, 0));
         return pool;
       }},
      {"extended battery (13 experts)",
       [](std::size_t m) { return predictors::make_extended_pool(m); }},
  };

  core::TextTable table({"pool", "experts", "avg accuracy", "avg LAR MSE",
                         "avg P-LAR MSE"});
  for (const auto& spec : pools) {
    double acc = 0.0, mse = 0.0, oracle = 0.0;
    int scored = 0;
    std::size_t experts = 0;
    for (const auto& [vm, metric] : traces) {
      const auto trace = tracegen::make_trace(vm, metric, /*seed=*/11);
      auto config = bench::paper_config(vm);
      const auto pool = spec.make(config.window);
      experts = pool.size();
      ml::CrossValidationPlan plan;
      plan.folds = 5;
      Rng rng(77);
      const auto result =
          core::cross_validate(trace.values, pool, config, plan, rng);
      if (result.degenerate) continue;
      acc += result.lar_accuracy;
      mse += result.mse_lar;
      oracle += result.mse_oracle;
      ++scored;
    }
    table.add_row({spec.label, std::to_string(experts),
                   core::TextTable::pct(acc / scored),
                   core::TextTable::num(mse / scored),
                   core::TextTable::num(oracle / scored)});
  }
  table.print(std::cout);

  std::printf("\nexpected shape: the oracle (P-LAR) MSE strictly improves as\n"
              "experts are added — more per-step choices.  Realized LAR MSE\n"
              "improves only while the classifier can still identify the\n"
              "winner: selection accuracy drops as classes multiply, which is\n"
              "the trade-off the paper's §7.3 anticipates (more experts are\n"
              "worthwhile because only one runs per step).\n");
  return 0;
}
