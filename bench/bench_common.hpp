// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "tracegen/catalog.hpp"

namespace larp::bench {

/// The paper's default pipeline configuration for a VM: prediction order 16
/// on the 30-minute VM1 trace (Table 2 caption), 5 elsewhere.
inline core::LarConfig paper_config(const std::string& vm_id) {
  core::LarConfig config;
  config.window = vm_id == "VM1" ? 16 : 5;
  // The paper sets a minimal-fraction-variance policy and reports that it
  // extracted two components on its traces (§6); we follow the policy — the
  // component count then adapts per trace (2 on most catalog traces).
  config.pca_components = 0;
  config.pca_min_variance = 0.85;
  config.knn_k = 3;
  // §6.1/Fig. 3's "least MSE" labeling over the prediction window itself
  // (label_window 0 = m).  bench_ablation_labeling sweeps the alternatives,
  // including §7.2.1's per-step reading.
  config.labeling = core::Labeling::WindowMse;
  config.label_window = 0;
  return config;
}

/// The paper's cross-validation protocol (§7.2).
inline ml::CrossValidationPlan paper_plan() {
  ml::CrossValidationPlan plan;
  plan.folds = 10;
  return plan;
}

/// Cross-validates one catalog trace with the paper pool and protocol.
inline core::TraceResult run_trace(const std::string& vm_id,
                                   const std::string& metric,
                                   std::uint64_t seed) {
  const auto trace = tracegen::make_trace(vm_id, metric, seed);
  const auto config = paper_config(vm_id);
  const auto pool = predictors::make_paper_pool(config.window);
  Rng rng(seed * 2654435761ULL + 17);
  return core::cross_validate(trace.values, pool, config, paper_plan(), rng);
}

/// Standard banner so every benchmark states what it regenerates.
inline void banner(const char* artifact, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("LARPredictor reproduction (synthetic ESX trace catalog; see\n");
  std::printf("DESIGN.md for the substitution record).\n");
  std::printf("================================================================\n\n");
}

}  // namespace larp::bench
