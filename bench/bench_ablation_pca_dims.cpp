// Ablation: PCA component count n (the paper fixes n = 2 via its
// min-fraction-variance setting) plus the min-variance policy itself and the
// Fig.-3 "predict in PCA space" reading (DESIGN.md §5).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: PCA dimensionality",
                "selection accuracy and MSE vs retained components (paper n=2)");

  const std::vector<std::pair<std::string, std::string>> traces = {
      {"VM2", "CPU_usedsec"}, {"VM2", "NIC1_received"},
      {"VM4", "CPU_usedsec"}, {"VM4", "NIC1_transmitted"},
      {"VM1", "CPU_usedsec"},
  };

  const auto sweep = [&](core::LarConfig base, const std::string& label,
                         core::TextTable& table) {
    double acc = 0.0, mse = 0.0;
    int scored = 0;
    for (const auto& [vm, metric] : traces) {
      const auto trace = tracegen::make_trace(vm, metric, /*seed=*/9);
      auto config = base;
      config.window = bench::paper_config(vm).window;
      const auto pool = predictors::make_paper_pool(config.window);
      ml::CrossValidationPlan plan;
      plan.folds = 5;
      Rng rng(1234);
      const auto result =
          core::cross_validate(trace.values, pool, config, plan, rng);
      if (result.degenerate) continue;
      acc += result.lar_accuracy;
      mse += result.mse_lar;
      ++scored;
    }
    table.add_row({label, core::TextTable::pct(acc / scored),
                   core::TextTable::num(mse / scored)});
  };

  core::TextTable table({"feature space", "avg accuracy", "avg LAR MSE"});
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    core::LarConfig config;
    config.pca_components = n;
    sweep(config, "PCA n=" + std::to_string(n), table);
  }
  {
    core::LarConfig config;
    config.pca_components = 0;
    config.pca_min_variance = 0.9;
    sweep(config, "PCA min-variance 90%", table);
  }
  {
    core::LarConfig config;
    config.pca_components = 2;
    config.predict_in_pca_space = true;
    sweep(config, "n=2 + predict on PCA reconstruction", table);
  }
  table.print(std::cout);

  std::printf("\nexpected shape: n=2 (the paper's choice) captures most of\n"
              "the window structure; n=1 loses burst-vs-trend separation;\n"
              "large n adds noise dimensions without accuracy gain.  Running\n"
              "the experts on the PCA reconstruction (the literal Fig. 3\n"
              "reading) costs MSE, supporting the §6.2 reading implemented\n"
              "as the default.\n");
  return 0;
}
