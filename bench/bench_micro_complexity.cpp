// Micro-benchmarks of the pipeline kernels, matching the §7.3 complexity
// discussion:
//   * PCA fit is O(d^2 W) + O(d^3) in the window size d — small by design;
//   * k-NN query is O(N) brute force, O(log N) expected with the kd-tree;
//   * AR fitting via Levinson–Durbin is O(p^2);
//   * the deployed LAR step (classify + ONE expert) vs the NWS step (run
//     the whole pool) — the paper's core efficiency claim.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "core/lar_predictor.hpp"
#include "linalg/kernels.hpp"
#include "linalg/toeplitz.hpp"
#include "ml/framing.hpp"
#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "ml/pca.hpp"
#include "predictors/pool.hpp"
#include "tracegen/catalog.hpp"
#include "util/rng.hpp"

namespace {

using namespace larp;

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.8 * dev + rng.normal();
    x = 50.0 + 5.0 * dev;
  }
  return xs;
}

linalg::Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix points(n, d);
  for (auto& v : points.data()) v = rng.uniform(-1, 1);
  return points;
}

void BM_PcaFit(benchmark::State& state) {
  const std::size_t window = state.range(0);
  const auto series = ar1_series(2000, 1);
  const auto framed = ml::frame_supervised(series, window);
  for (auto _ : state) {
    ml::Pca pca;
    pca.fit(framed.windows, ml::PcaPolicy{2, 0.9});
    benchmark::DoNotOptimize(pca.components());
  }
  state.SetComplexityN(window);
}
BENCHMARK(BM_PcaFit)->Arg(5)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_PcaTransform(benchmark::State& state) {
  const std::size_t window = state.range(0);
  const auto series = ar1_series(2000, 2);
  const auto framed = ml::frame_supervised(series, window);
  ml::Pca pca;
  pca.fit(framed.windows, ml::PcaPolicy{2, 0.9});
  const auto sample = framed.windows.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pca.transform(sample));
  }
}
BENCHMARK(BM_PcaTransform)->Arg(5)->Arg(16)->Arg(64);

void BM_KnnQueryBrute(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ml::KnnClassifier knn(3, ml::KnnBackend::BruteForce);
  std::vector<std::size_t> labels(n, 0);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, 2, 3), labels);
  const linalg::Vector query{0.1, -0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.classify(query));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnQueryBrute)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_KnnQueryKdTree(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ml::KnnClassifier knn(3, ml::KnnBackend::KdTree);
  std::vector<std::size_t> labels(n, 0);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, 2, 4), labels);
  const linalg::Vector query{0.1, -0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.classify(query));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnQueryKdTree)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_ArFitYuleWalker(benchmark::State& state) {
  const std::size_t order = state.range(0);
  const auto series = ar1_series(4000, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::yule_walker(series, order));
  }
  state.SetComplexityN(order);
}
BENCHMARK(BM_ArFitYuleWalker)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_LarTrain(benchmark::State& state) {
  const std::size_t samples = state.range(0);
  const auto series = ar1_series(samples, 6);
  core::LarConfig config;
  config.window = 5;
  for (auto _ : state) {
    core::LarPredictor lar(predictors::make_paper_pool(5), config);
    lar.train(series);
    benchmark::DoNotOptimize(lar.training_labels().size());
  }
  state.SetComplexityN(samples);
}
BENCHMARK(BM_LarTrain)->Arg(144)->Arg(288)->Arg(1024)->Arg(4096)->Complexity();

// The paper's efficiency claim: a deployed LAR step classifies and runs ONE
// expert, while the NWS approach runs the whole pool every step.
void BM_DeployedLarStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 7);
  core::LarConfig config;
  config.window = 5;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(series);
  double feed = series.back();
  for (auto _ : state) {
    const auto forecast = lar.predict_next();
    benchmark::DoNotOptimize(forecast.value);
    lar.observe(feed);
  }
}
BENCHMARK(BM_DeployedLarStep);

void BM_NwsParallelPoolStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 8);
  auto pool = predictors::make_paper_pool(5);
  pool.fit_all(series);
  const std::vector<double> window(series.end() - 5, series.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.predict_all(window));
  }
}
BENCHMARK(BM_NwsParallelPoolStep);

void BM_NwsParallelExtendedPoolStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 9);
  auto pool = predictors::make_extended_pool(5);
  pool.fit_all(series);
  const std::vector<double> window(series.end() - 5, series.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.predict_all(window));
  }
}
BENCHMARK(BM_NwsParallelExtendedPoolStep);

// Soft voting runs up to k experts per step instead of one.
void BM_SoftVoteLarStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 10);
  core::LarConfig config;
  config.window = 5;
  config.soft_vote = true;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(series);
  double feed = series.back();
  for (auto _ : state) {
    const auto forecast = lar.predict_next();
    benchmark::DoNotOptimize(forecast.value);
    lar.observe(feed);
  }
}
BENCHMARK(BM_SoftVoteLarStep);

// The online-learning hot path: one labeled point appended to the kd-tree
// index.  Incremental insertion keeps this amortized O(log N) — before the
// fix every add rebuilt the whole tree, making it O(N log N).
void BM_KnnAddKdTree(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ml::KnnClassifier knn(3, ml::KnnBackend::KdTree);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, 2, 12), labels);
  Rng rng(13);
  std::size_t label = 0;
  for (auto _ : state) {
    const linalg::Vector point{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    knn.add(point, label);
    label = (label + 1) % 3;
    benchmark::DoNotOptimize(knn.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnAddKdTree)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_KdTreeBuild(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto points = random_points(n, 2, 11);
  for (auto _ : state) {
    ml::KdTree tree(points);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(100)->Arg(1000)->Arg(10000)->Complexity();

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracegen::make_trace("VM2", "NIC1_received", 10, 288));
  }
}
BENCHMARK(BM_TraceGeneration);

// ---------------------------------------------------------------------------
// Self-timed hot-path section (--hotpath_json=PATH): measures the scratch
// query paths against the allocating reference paths — which keep the exact
// pre-PR formulation (O(N) candidate buffer + partial_sort + std::map vote),
// so the recorded speedup is a same-binary, same-run before/after comparison.
// Emits a JSON fragment consumed by scripts/run_benchmarks.sh, which merges
// it into BENCH_hotpath.json.
// ---------------------------------------------------------------------------

struct LatencyStats {
  double ops_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

/// Times `op()` once per sample and summarizes the per-op latency
/// distribution.  Individual timing (not batch-averaged) so the percentiles
/// are real per-call numbers.
template <typename Op>
LatencyStats measure(std::size_t samples, Op&& op) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> ns(samples);
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto start = Clock::now();
    op(i);
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    ns[i] = elapsed;
    total += elapsed;
  }
  std::sort(ns.begin(), ns.end());
  LatencyStats stats;
  stats.ops_per_sec = static_cast<double>(samples) / (total * 1e-9);
  stats.p50_ns = ns[samples / 2];
  stats.p99_ns = ns[(samples * 99) / 100];
  return stats;
}

void print_stats_json(std::FILE* out, const char* key,
                      const LatencyStats& stats, bool trailing_comma) {
  std::fprintf(out,
               "    \"%s\": {\"ops_per_sec\": %.1f, \"p50_ns\": %.0f, "
               "\"p99_ns\": %.0f}%s\n",
               key, stats.ops_per_sec, stats.p50_ns, stats.p99_ns,
               trailing_comma ? "," : "");
}

/// Allocating classify vs scratch classify on one backend; the JSON object
/// carries both plus the throughput speedup.
void bench_hotpath_classify(std::FILE* out, const char* key,
                            ml::KnnBackend backend, std::size_t n,
                            std::size_t samples, bool trailing_comma) {
  constexpr std::size_t kDims = 2;
  ml::KnnClassifier knn(3, backend);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, kDims, 21), labels);

  // A pool of queries cycled through so the branch/cache behaviour is not
  // one artificially hot query.
  constexpr std::size_t kQueries = 256;
  const auto queries = random_points(kQueries, kDims, 22);
  const auto query = [&](std::size_t i) { return queries.row(i % kQueries); };

  std::size_t sink = 0;
  const auto baseline = measure(samples, [&](std::size_t i) {
    sink += knn.classify(query(i));
  });
  ml::NeighborScratch scratch;
  (void)knn.classify(query(0), scratch);  // warm the scratch capacity
  const auto with_scratch = measure(samples, [&](std::size_t i) {
    sink += knn.classify(query(i), scratch);
  });
  benchmark::DoNotOptimize(sink);

  std::fprintf(out, "    \"%s\": {\n", key);
  std::fprintf(out, "      \"index_size\": %zu, \"k\": 3,\n", n);
  std::fprintf(out,
               "      \"baseline\": {\"ops_per_sec\": %.1f, \"p50_ns\": %.0f, "
               "\"p99_ns\": %.0f},\n",
               baseline.ops_per_sec, baseline.p50_ns, baseline.p99_ns);
  std::fprintf(out,
               "      \"scratch\": {\"ops_per_sec\": %.1f, \"p50_ns\": %.0f, "
               "\"p99_ns\": %.0f},\n",
               with_scratch.ops_per_sec, with_scratch.p50_ns,
               with_scratch.p99_ns);
  std::fprintf(out, "      \"speedup\": %.2f\n",
               with_scratch.ops_per_sec / baseline.ops_per_sec);
  std::fprintf(out, "    }%s\n", trailing_comma ? "," : "");
}

void run_hotpath(const std::string& json_path, bool quick) {
  namespace kernels = larp::linalg::kernels;
  const std::size_t samples = quick ? 400 : 4000;

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "    \"isa\": \"%s\",\n",
               kernels::active_isa() == kernels::Isa::Avx2 ? "avx2" : "scalar");
  std::fprintf(out, "    \"samples_per_metric\": %zu,\n", samples);

  // The acceptance metric: scratch classify vs the pre-PR allocating
  // formulation on the brute-force backend.
  bench_hotpath_classify(out, "knn_classify_bruteforce",
                         ml::KnnBackend::BruteForce, 4096, samples, true);
  bench_hotpath_classify(out, "knn_classify_kdtree", ml::KnnBackend::KdTree,
                         4096, samples, true);

  // The deployed LAR step (predict_next + observe): the end-to-end loop the
  // zero-allocation contract covers.
  {
    const auto series = ar1_series(1000, 23);
    core::LarConfig config;
    config.window = 5;
    core::LarPredictor lar(predictors::make_paper_pool(5), config);
    lar.train(series);
    const auto live = ar1_series(samples + 100, 24);
    for (std::size_t i = 0; i < 100; ++i) {  // warm scratch + residual window
      benchmark::DoNotOptimize(lar.predict_next());
      lar.observe(live[i]);
    }
    const auto step = measure(samples, [&](std::size_t i) {
      benchmark::DoNotOptimize(lar.predict_next());
      lar.observe(live[100 + i]);
    });
    print_stats_json(out, "lar_deployed_step", step, false);
  }

  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("hotpath metrics written to %s\n", json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Custom flags (stripped before google-benchmark sees the arguments):
  //   --hotpath_json=PATH  run the self-timed hot-path section, emit JSON
  //   --hotpath_quick      fewer samples (CI smoke)
  //   --hotpath_only       skip the registered google-benchmark suite
  std::string json_path;
  bool quick = false;
  bool hotpath_only = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--hotpath_json=", 0) == 0) {
      json_path = arg.substr(15);
    } else if (arg == "--hotpath_quick") {
      quick = true;
    } else if (arg == "--hotpath_only") {
      hotpath_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) run_hotpath(json_path, quick);
  if (hotpath_only) return 0;

  int pass_argc = static_cast<int>(args.size());
  benchmark::Initialize(&pass_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
