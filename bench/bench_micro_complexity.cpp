// Micro-benchmarks of the pipeline kernels, matching the §7.3 complexity
// discussion:
//   * PCA fit is O(d^2 W) + O(d^3) in the window size d — small by design;
//   * k-NN query is O(N) brute force, O(log N) expected with the kd-tree;
//   * AR fitting via Levinson–Durbin is O(p^2);
//   * the deployed LAR step (classify + ONE expert) vs the NWS step (run
//     the whole pool) — the paper's core efficiency claim.
#include <benchmark/benchmark.h>

#include "core/lar_predictor.hpp"
#include "linalg/toeplitz.hpp"
#include "ml/framing.hpp"
#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "ml/pca.hpp"
#include "predictors/pool.hpp"
#include "tracegen/catalog.hpp"
#include "util/rng.hpp"

namespace {

using namespace larp;

std::vector<double> ar1_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  double dev = 0.0;
  for (auto& x : xs) {
    dev = 0.8 * dev + rng.normal();
    x = 50.0 + 5.0 * dev;
  }
  return xs;
}

linalg::Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix points(n, d);
  for (auto& v : points.data()) v = rng.uniform(-1, 1);
  return points;
}

void BM_PcaFit(benchmark::State& state) {
  const std::size_t window = state.range(0);
  const auto series = ar1_series(2000, 1);
  const auto framed = ml::frame_supervised(series, window);
  for (auto _ : state) {
    ml::Pca pca;
    pca.fit(framed.windows, ml::PcaPolicy{2, 0.9});
    benchmark::DoNotOptimize(pca.components());
  }
  state.SetComplexityN(window);
}
BENCHMARK(BM_PcaFit)->Arg(5)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_PcaTransform(benchmark::State& state) {
  const std::size_t window = state.range(0);
  const auto series = ar1_series(2000, 2);
  const auto framed = ml::frame_supervised(series, window);
  ml::Pca pca;
  pca.fit(framed.windows, ml::PcaPolicy{2, 0.9});
  const auto sample = framed.windows.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pca.transform(sample));
  }
}
BENCHMARK(BM_PcaTransform)->Arg(5)->Arg(16)->Arg(64);

void BM_KnnQueryBrute(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ml::KnnClassifier knn(3, ml::KnnBackend::BruteForce);
  std::vector<std::size_t> labels(n, 0);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, 2, 3), labels);
  const linalg::Vector query{0.1, -0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.classify(query));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnQueryBrute)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_KnnQueryKdTree(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ml::KnnClassifier knn(3, ml::KnnBackend::KdTree);
  std::vector<std::size_t> labels(n, 0);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, 2, 4), labels);
  const linalg::Vector query{0.1, -0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.classify(query));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnQueryKdTree)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_ArFitYuleWalker(benchmark::State& state) {
  const std::size_t order = state.range(0);
  const auto series = ar1_series(4000, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::yule_walker(series, order));
  }
  state.SetComplexityN(order);
}
BENCHMARK(BM_ArFitYuleWalker)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_LarTrain(benchmark::State& state) {
  const std::size_t samples = state.range(0);
  const auto series = ar1_series(samples, 6);
  core::LarConfig config;
  config.window = 5;
  for (auto _ : state) {
    core::LarPredictor lar(predictors::make_paper_pool(5), config);
    lar.train(series);
    benchmark::DoNotOptimize(lar.training_labels().size());
  }
  state.SetComplexityN(samples);
}
BENCHMARK(BM_LarTrain)->Arg(144)->Arg(288)->Arg(1024)->Arg(4096)->Complexity();

// The paper's efficiency claim: a deployed LAR step classifies and runs ONE
// expert, while the NWS approach runs the whole pool every step.
void BM_DeployedLarStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 7);
  core::LarConfig config;
  config.window = 5;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(series);
  double feed = series.back();
  for (auto _ : state) {
    const auto forecast = lar.predict_next();
    benchmark::DoNotOptimize(forecast.value);
    lar.observe(feed);
  }
}
BENCHMARK(BM_DeployedLarStep);

void BM_NwsParallelPoolStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 8);
  auto pool = predictors::make_paper_pool(5);
  pool.fit_all(series);
  const std::vector<double> window(series.end() - 5, series.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.predict_all(window));
  }
}
BENCHMARK(BM_NwsParallelPoolStep);

void BM_NwsParallelExtendedPoolStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 9);
  auto pool = predictors::make_extended_pool(5);
  pool.fit_all(series);
  const std::vector<double> window(series.end() - 5, series.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.predict_all(window));
  }
}
BENCHMARK(BM_NwsParallelExtendedPoolStep);

// Soft voting runs up to k experts per step instead of one.
void BM_SoftVoteLarStep(benchmark::State& state) {
  const auto series = ar1_series(1000, 10);
  core::LarConfig config;
  config.window = 5;
  config.soft_vote = true;
  core::LarPredictor lar(predictors::make_paper_pool(5), config);
  lar.train(series);
  double feed = series.back();
  for (auto _ : state) {
    const auto forecast = lar.predict_next();
    benchmark::DoNotOptimize(forecast.value);
    lar.observe(feed);
  }
}
BENCHMARK(BM_SoftVoteLarStep);

// The online-learning hot path: one labeled point appended to the kd-tree
// index.  Incremental insertion keeps this amortized O(log N) — before the
// fix every add rebuilt the whole tree, making it O(N log N).
void BM_KnnAddKdTree(benchmark::State& state) {
  const std::size_t n = state.range(0);
  ml::KnnClassifier knn(3, ml::KnnBackend::KdTree);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 3;
  knn.fit(random_points(n, 2, 12), labels);
  Rng rng(13);
  std::size_t label = 0;
  for (auto _ : state) {
    const linalg::Vector point{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    knn.add(point, label);
    label = (label + 1) % 3;
    benchmark::DoNotOptimize(knn.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnAddKdTree)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_KdTreeBuild(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto points = random_points(n, 2, 11);
  for (auto _ : state) {
    ml::KdTree tree(points);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(100)->Arg(1000)->Arg(10000)->Complexity();

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracegen::make_trace("VM2", "NIC1_received", 10, 288));
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

BENCHMARK_MAIN();
