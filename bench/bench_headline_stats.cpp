// Headline statistics of §7 across the full 5-VM × 12-metric trace grid:
//
//   paper claim                                          paper value
//   ---------------------------------------------------  -----------
//   LAR best-predictor forecasting accuracy (average)       55.98%
//   accuracy advantage over the NWS selector                +20.18pt
//   traces where LAR >= best single predictor               44.23%
//   traces where LAR beats the NWS selection                66.67%
//   P-LAR (oracle) MSE reduction vs the NWS selection        18.6%
//
// Absolute values shift with the synthetic catalog; the claims to verify
// are the orderings and rough magnitudes.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace larp;
  bench::banner("Headline statistics (§7.1 / §7.2)",
                "aggregates over the 5 VM x 12 metric trace grid");

  struct Cell {
    std::string vm, metric;
    core::TraceResult result;
  };

  // Enumerate the grid, then cross-validate every trace in parallel.
  std::vector<std::pair<std::string, std::string>> grid;
  for (const auto& vm : tracegen::paper_vms()) {
    for (const auto& metric : tracegen::paper_metrics()) {
      grid.emplace_back(vm.vm_id, metric);
    }
  }
  const auto cells = parallel_map(grid.size(), [&](std::size_t i) {
    return Cell{grid[i].first, grid[i].second,
                bench::run_trace(grid[i].first, grid[i].second, /*seed=*/6)};
  });

  double lar_acc = 0.0, nws_acc = 0.0, wnws_acc = 0.0;
  double oracle_mse = 0.0, nws_mse = 0.0;
  int beats_best_single = 0, beats_nws = 0, scored = 0, degenerate = 0;
  for (const auto& cell : cells) {
    if (cell.result.degenerate) {
      ++degenerate;
      continue;
    }
    ++scored;
    lar_acc += cell.result.lar_accuracy;
    nws_acc += cell.result.nws_accuracy;
    wnws_acc += cell.result.wnws_accuracy;
    oracle_mse += cell.result.mse_oracle;
    nws_mse += cell.result.mse_nws;
    if (cell.result.lar_beats_best_single()) ++beats_best_single;
    if (cell.result.lar_beats_nws()) ++beats_nws;
  }
  lar_acc /= scored;
  nws_acc /= scored;
  wnws_acc /= scored;

  core::TextTable table({"statistic", "measured", "paper"});
  table.add_row({"traces scored (non-degenerate)", std::to_string(scored),
                 "52 of 60"});
  table.add_row({"degenerate (NaN) traces", std::to_string(degenerate), "8"});
  table.add_row({"LAR best-predictor forecasting accuracy",
                 core::TextTable::pct(lar_acc), "55.98%"});
  table.add_row({"NWS (Cum.MSE) forecasting accuracy",
                 core::TextTable::pct(nws_acc), "35.80% (derived)"});
  table.add_row({"LAR accuracy advantage over NWS",
                 core::TextTable::num((lar_acc - nws_acc) * 100.0, 2) + "pt",
                 "+20.18pt"});
  table.add_row({"W-Cum.MSE forecasting accuracy",
                 core::TextTable::pct(wnws_acc), "(not reported)"});
  table.add_row(
      {"traces where LAR >= best single predictor",
       core::TextTable::pct(static_cast<double>(beats_best_single) / scored),
       "44.23%"});
  table.add_row({"traces where LAR beats the NWS selection",
                 core::TextTable::pct(static_cast<double>(beats_nws) / scored),
                 "66.67%"});
  table.add_row({"P-LAR MSE reduction vs NWS selection",
                 core::TextTable::pct(1.0 - oracle_mse / nws_mse), "18.6%"});
  table.print(std::cout);

  // Distribution of LAR's MSE relative to its competitors across traces —
  // the dispersion behind the trace-fraction statistics above.
  std::vector<double> vs_best, vs_nws;
  for (const auto& cell : cells) {
    if (cell.result.degenerate) continue;
    const double best = cell.result.mse_single[cell.result.best_single_label()];
    vs_best.push_back(cell.result.mse_lar / best);
    vs_nws.push_back(cell.result.mse_lar / cell.result.mse_nws);
  }
  core::TextTable ratios({"MSE ratio", "p10", "p25", "median", "p75", "p90"});
  const auto row = [&](const char* label, std::vector<double>& xs) {
    ratios.add_row({label, core::TextTable::num(stats::percentile(xs, 10), 3),
                    core::TextTable::num(stats::percentile(xs, 25), 3),
                    core::TextTable::num(stats::percentile(xs, 50), 3),
                    core::TextTable::num(stats::percentile(xs, 75), 3),
                    core::TextTable::num(stats::percentile(xs, 90), 3)});
  };
  row("LAR / best single expert", vs_best);
  row("LAR / NWS (Cum.MSE)", vs_nws);
  std::printf("\n");
  ratios.print(std::cout);

  std::printf("\nshape checks: LAR accuracy must exceed NWS accuracy; the\n"
              "better-than-best-expert and beats-NWS fractions must be\n"
              "substantial; the oracle must show a double-digit MSE margin\n"
              "over the NWS selection.\n");
  return 0;
}
