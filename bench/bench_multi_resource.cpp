// Extension bench: the multi-resource (cross-correlation) predictor from
// the paper's related work (§2, Liang et al. CCGrid'04), swept over coupling
// strengths.  Shows the crossover the related work claims: once the
// auxiliary resource carries real lead information, the cross-regression
// beats every univariate expert — and degrades gracefully to AR parity when
// the coupling vanishes.
#include <iostream>

#include "bench_common.hpp"
#include "predictors/autoregressive.hpp"
#include "predictors/multi_resource.hpp"
#include "util/stats.hpp"

namespace {

struct Pair {
  std::vector<double> primary, auxiliary;
};

// Auxiliary series leads the primary by one step with the given coupling.
Pair make_pair(std::size_t n, larp::Rng& rng, double coupling) {
  Pair pair;
  pair.primary.resize(n);
  pair.auxiliary.resize(n);
  double aux = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    aux = 0.8 * aux + rng.normal();
    pair.auxiliary[t] = aux;
    const double lead = t > 0 ? pair.auxiliary[t - 1] : 0.0;
    pair.primary[t] = 0.3 * (t > 0 ? pair.primary[t - 1] : 0.0) +
                      coupling * lead + rng.normal(0.0, 0.5);
  }
  return pair;
}

}  // namespace

int main() {
  using namespace larp;
  bench::banner("Extension: multi-resource prediction",
                "cross-correlation (CPU+memory style) vs univariate AR");

  core::TextTable table({"coupling", "AR(2) MSE", "cross MSE", "gain",
                         "aux coefficient"});
  for (double coupling : {0.0, 0.2, 0.4, 0.6, 0.9}) {
    Rng rng(2007);
    const auto train = make_pair(8000, rng, coupling);
    const auto test = make_pair(8000, rng, coupling);

    predictors::MultiResourcePredictor cross(2);
    cross.fit(train.primary, train.auxiliary);
    const double cross_mse = cross.walk_mse(test.primary, test.auxiliary);

    predictors::Autoregressive ar(2);
    ar.fit(train.primary);
    stats::RunningMse ar_mse;
    for (std::size_t t = 2; t < test.primary.size(); ++t) {
      const std::vector<double> window{test.primary[t - 2],
                                       test.primary[t - 1]};
      ar_mse.add(ar.predict(window), test.primary[t]);
    }

    table.add_row({core::TextTable::num(coupling, 1),
                   core::TextTable::num(ar_mse.value()),
                   core::TextTable::num(cross_mse),
                   core::TextTable::pct(1.0 - cross_mse / ar_mse.value(), 1),
                   core::TextTable::num(cross.auxiliary_coefficients()[0], 3)});
  }
  table.print(std::cout);

  std::printf("\nexpected shape: at coupling 0 the cross model matches AR\n"
              "(aux coefficient ~ 0); the gain grows monotonically with the\n"
              "coupling as the cross terms absorb the auxiliary lead — the\n"
              "related-work claim the paper cites (higher CPU prediction\n"
              "accuracy from CPU-memory cross correlation).\n");
  return 0;
}
