// Ablation: online classifier learning (the §8 accuracy future-work item,
// implemented as LarConfig::online_learning) under walk-forward operation.
//
// Three deployment variants on the same traces:
//   frozen     — classifier fixed at training time, no re-training;
//   retrained  — QA-cadence re-training every 48 steps (the §3.2 loop);
//   online     — the classifier index grows with every observed window
//                (full-pool evaluation per step, no re-training).
// Shape to check: on regime-switching traces both adaptation mechanisms
// beat the frozen classifier; online learning does it without the
// re-training pauses, at the cost of running the whole pool each step.
#include <iostream>

#include "bench_common.hpp"
#include "core/rolling.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: online learning",
                "frozen vs QA-retrained vs online-learning deployment");

  const std::vector<std::pair<std::string, std::string>> traces = {
      {"VM2", "load15"},      {"VM2", "CPU_usedsec"}, {"VM2", "NIC1_received"},
      {"VM4", "CPU_usedsec"}, {"VM4", "VD1_write"},   {"VM5", "NIC2_received"},
  };

  struct Variant {
    const char* label;
    std::size_t retrain_every;
    bool online;
  };
  const Variant variants[] = {
      {"frozen", 0, false},
      {"retrained (48)", 48, false},
      {"online learning", 0, true},
  };

  core::TextTable table({"trace", "frozen", "retrained (48)",
                         "online learning", "P-LAR"});
  double totals[3] = {0, 0, 0};
  double oracle_total = 0;
  const auto rows = parallel_map(traces.size(), [&](std::size_t i) {
    const auto& [vm, metric] = traces[i];
    const auto trace = tracegen::make_trace(vm, metric, /*seed=*/13);
    std::array<double, 4> cells{};
    for (int v = 0; v < 3; ++v) {
      core::RollingOriginConfig config;
      config.lar = bench::paper_config(vm);
      config.lar.online_learning = variants[v].online;
      config.initial_train = trace.size() / 2;
      config.retrain_every = variants[v].retrain_every;
      const auto pool = predictors::make_paper_pool(config.lar.window);
      const auto r = core::rolling_origin_evaluate(trace.values, pool, config);
      cells[v] = r.mse_lar;
      cells[3] = r.mse_oracle;  // oracle identical across variants
    }
    return std::make_pair(vm + "/" + metric, cells);
  });
  for (const auto& [name, cells] : rows) {
    table.add_row({name, core::TextTable::num(cells[0], 2),
                   core::TextTable::num(cells[1], 2),
                   core::TextTable::num(cells[2], 2),
                   core::TextTable::num(cells[3], 2)});
    for (int v = 0; v < 3; ++v) totals[v] += cells[v];
    oracle_total += cells[3];
  }
  table.add_row({"TOTAL", core::TextTable::num(totals[0], 2),
                 core::TextTable::num(totals[1], 2),
                 core::TextTable::num(totals[2], 2),
                 core::TextTable::num(oracle_total, 2)});
  table.print(std::cout);

  std::printf("\nraw-unit MSE; lower is better.  Expected shape: on the\n"
              "catalog's STATIONARY traces the frozen classifier (trained on\n"
              "half the series) is already well-matched, so the adaptation\n"
              "variants hover around it — adaptation buys little and can\n"
              "cost a few percent where re-training windows catch an\n"
              "unlucky regime.  Adaptation pays under genuine\n"
              "NON-stationary drift, where the training distribution no\n"
              "longer covers the present: tests/core/test_rolling.cpp\n"
              "(RetrainingHelpsAfterARegimeChange) and\n"
              "tests/core/test_online_learning.cpp demonstrate exactly that\n"
              "scenario.  Online learning additionally pays the full-pool\n"
              "evaluation per step (see bench_micro_complexity).\n");
  return 0;
}
