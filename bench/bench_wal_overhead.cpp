// Durability-layer benchmark backing the PR's overhead claims:
//
//   1. WAL append overhead on the observe hot path: steady-state
//      predict+observe throughput with durability off vs. each fsync policy
//      (every_n, interval, always), in both durability modes — Sync runs the
//      policy's fdatasync inline on the serving threads, Async moves it onto
//      the background WalSyncer so the appender only pays the write(2).
//      `always` pays one inline fdatasync per batch frame in either mode and
//      is the documented worst case.
//   2. snapshot(): wall time, the longest single-shard serving pause (the
//      incremental snapshot's real cost to traffic), payload size, and
//      restore() wall time from that snapshot.
//
// Plain chrono timing like the table/figure benches (exit code 0 always;
// the numbers are the artifact).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "persist/snapshot.hpp"
#include "serve/prediction_engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace larp;
namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Workload {
  std::vector<tsdb::SeriesKey> keys;
  std::vector<Rng> rngs;
  std::vector<double> level;
  std::vector<serve::Observation> batch;

  explicit Workload(std::size_t series)
      : keys(series), level(series, 0.0), batch(series) {
    Rng parent(2007);
    rngs.reserve(series);
    for (std::size_t s = 0; s < series; ++s) {
      keys[s] = {"host" + std::to_string(s / 8), "dev" + std::to_string(s % 8),
                 "cpu"};
      rngs.push_back(parent.split(s));
    }
  }

  void fill() {
    for (std::size_t s = 0; s < keys.size(); ++s) {
      level[s] = 0.8 * level[s] + rngs[s].normal(0.0, 2.0);
      batch[s] = {keys[s], 50.0 + level[s]};
    }
  }
};

serve::EngineConfig engine_config(
    const fs::path& data_dir, persist::FsyncPolicy policy,
    persist::DurabilityMode mode = persist::DurabilityMode::Sync) {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 16;
  config.threads = 2;
  config.train_samples = 48;
  if (!data_dir.empty()) {
    config.durability.data_dir = data_dir;
    config.durability.wal.fsync = policy;
    config.durability.wal.fsync_every_n = 64;
    config.durability.wal.mode = mode;
  }
  return config;
}

/// Steady-state series-steps/sec for one durability configuration.  The
/// measured loop issues predict/observe in sub-batches of `batch_size`
/// series per call, so the WAL group size per (shard, call) scales with it —
/// batch_size == series is the original whole-fleet batch.
double observe_throughput(const fs::path& data_dir, persist::FsyncPolicy policy,
                          persist::DurabilityMode mode, std::size_t series,
                          std::size_t steps, std::size_t batch_size) {
  if (!data_dir.empty()) fs::remove_all(data_dir);
  serve::PredictionEngine engine(predictors::make_paper_pool(5),
                                 engine_config(data_dir, policy, mode));
  Workload load(series);
  const auto warmup = engine.config().train_samples;
  for (std::size_t i = 0; i < warmup; ++i) {
    load.fill();
    engine.observe(load.batch);
  }
  const std::span<const tsdb::SeriesKey> keys(load.keys);
  const std::span<const serve::Observation> batch(load.batch);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    for (std::size_t off = 0; off < series; off += batch_size) {
      const std::size_t n = std::min(batch_size, series - off);
      (void)engine.predict(keys.subspan(off, n));
    }
    load.fill();
    for (std::size_t off = 0; off < series; off += batch_size) {
      const std::size_t n = std::min(batch_size, series - off);
      engine.observe(batch.subspan(off, n));
    }
  }
  const double elapsed = seconds_since(start);
  if (!data_dir.empty()) fs::remove_all(data_dir);
  return static_cast<double>(series) * static_cast<double>(steps) / elapsed;
}

struct WalPoint {
  std::string name;
  double rate = 0.0;
  double overhead_pct = 0.0;  // slowdown vs. durability off
};

std::vector<WalPoint> bench_wal_overhead(const fs::path& scratch, bool quick) {
  const std::size_t series = quick ? 64 : 256;
  const std::size_t steps = quick ? 8 : 96;
  std::printf("observe-path WAL overhead (%zu series, %zu steps, 2 threads)\n",
              series, steps);
  std::printf("%16s %20s %10s\n", "durability", "series-steps/s", "overhead");

  std::vector<WalPoint> points;
  const auto run = [&](const std::string& name, const fs::path& dir,
                       persist::FsyncPolicy policy,
                       persist::DurabilityMode mode) {
    const double rate =
        observe_throughput(dir, policy, mode, series, steps, series);
    double overhead = 0.0;
    if (!points.empty()) {
      overhead = 100.0 * (points.front().rate / rate - 1.0);
    }
    points.push_back({name, rate, overhead});
    std::printf("%16s %20.0f %9.1f%%\n", name.c_str(), rate, overhead);
  };
  const auto kSync = persist::DurabilityMode::Sync;
  const auto kAsync = persist::DurabilityMode::Async;
  run("off", {}, persist::FsyncPolicy::EveryN, kSync);
  run("wal-every-64", scratch / "every_n", persist::FsyncPolicy::EveryN, kSync);
  run("wal-every-64-async", scratch / "every_n_async",
      persist::FsyncPolicy::EveryN, kAsync);
  run("wal-interval", scratch / "interval", persist::FsyncPolicy::Interval,
      kSync);
  run("wal-interval-async", scratch / "interval_async",
      persist::FsyncPolicy::Interval, kAsync);
  if (!quick) {
    run("wal-always", scratch / "always", persist::FsyncPolicy::Always, kSync);
  }
  return points;
}

struct BatchSweepPoint {
  std::size_t batch = 0;
  double off_rate = 0.0;
  double wal_rate = 0.0;
  double overhead_pct = 0.0;  // wal-every-64 slowdown vs. off at this batch
  double async_rate = 0.0;    // same policy under DurabilityMode::Async
  double async_overhead_pct = 0.0;
};

// Like observe_throughput but on a single-shard, single-thread engine, so
// every predict/observe call stages exactly `batch_size` frames into ONE
// group: the sweep axis is the WAL group size itself, not group size diluted
// across 16 shards.  Best-of-`reps` to shed scheduler noise.
double sweep_throughput(const fs::path& data_dir, persist::DurabilityMode mode,
                        std::size_t series, std::size_t steps,
                        std::size_t batch_size, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    // Let writeback from the previous measurement drain; on a small host the
    // flusher otherwise steals cycles from the durability-off points and
    // inflates their variance (observed 450k..800k series-steps/s).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (!data_dir.empty()) fs::remove_all(data_dir);
    serve::EngineConfig config;
    config.lar.window = 5;
    config.shards = 1;
    config.threads = 1;
    config.train_samples = 48;
    if (!data_dir.empty()) {
      config.durability.data_dir = data_dir;
      config.durability.wal.fsync = persist::FsyncPolicy::EveryN;
      config.durability.wal.fsync_every_n = 64;
      config.durability.wal.mode = mode;
    }
    serve::PredictionEngine engine(predictors::make_paper_pool(5), config);
    Workload load(series);
    for (std::size_t i = 0; i < config.train_samples; ++i) {
      load.fill();
      engine.observe(load.batch);
    }
    const std::span<const tsdb::SeriesKey> keys(load.keys);
    const std::span<const serve::Observation> batch(load.batch);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < steps; ++i) {
      for (std::size_t off = 0; off < series; off += batch_size) {
        const std::size_t n = std::min(batch_size, series - off);
        (void)engine.predict(keys.subspan(off, n));
      }
      load.fill();
      for (std::size_t off = 0; off < series; off += batch_size) {
        const std::size_t n = std::min(batch_size, series - off);
        engine.observe(batch.subspan(off, n));
      }
    }
    const double rate = static_cast<double>(series) *
                        static_cast<double>(steps) / seconds_since(start);
    best = std::max(best, rate);
    if (!data_dir.empty()) fs::remove_all(data_dir);
  }
  return best;
}

// Group-commit payoff curve.  batch=1 is the degenerate per-frame case (one
// group of one frame per call, the pre-group-commit writer behaviour);
// batch=64 matches fsync_every_n so each group carries exactly one sync; and
// beyond that the single policy decision per group amortises the fdatasync
// itself across the whole group.
std::vector<BatchSweepPoint> bench_batch_sweep(const fs::path& scratch,
                                               bool quick) {
  const std::size_t series = quick ? 64 : 512;
  const std::size_t steps = quick ? 8 : 96;
  const int reps = quick ? 1 : 3;
  const std::vector<std::size_t> batches =
      quick ? std::vector<std::size_t>{1, 32}
            : std::vector<std::size_t>{1, 8, 32, 64, 256, 512};
  std::printf(
      "\ngroup-commit batch sweep (%zu series, %zu steps, 1 shard, every-64, "
      "best of %d)\n",
      series, steps, reps);
  std::printf("%8s %16s %16s %10s %16s %10s\n", "batch", "off/s",
              "wal-every-64/s", "overhead", "async/s", "overhead");
  std::vector<BatchSweepPoint> points;
  const auto kSync = persist::DurabilityMode::Sync;
  const auto kAsync = persist::DurabilityMode::Async;
  for (const std::size_t batch : batches) {
    BatchSweepPoint p;
    p.batch = batch;
    p.off_rate = sweep_throughput({}, kSync, series, steps, batch, reps);
    p.wal_rate = sweep_throughput(scratch / "sweep_every_n", kSync, series,
                                  steps, batch, reps);
    p.overhead_pct = 100.0 * (p.off_rate / p.wal_rate - 1.0);
    p.async_rate = sweep_throughput(scratch / "sweep_async", kAsync, series,
                                    steps, batch, reps);
    p.async_overhead_pct = 100.0 * (p.off_rate / p.async_rate - 1.0);
    std::printf("%8zu %16.0f %16.0f %9.1f%% %16.0f %9.1f%%\n", p.batch,
                p.off_rate, p.wal_rate, p.overhead_pct, p.async_rate,
                p.async_overhead_pct);
    points.push_back(p);
  }
  return points;
}

struct StorageMode {
  std::string name;
  std::uint64_t wal_bytes = 0;  // on-disk log bytes for the whole run
  std::uint64_t frames = 0;
  std::uint64_t records = 0;            // logical ops staged
  double wal_bytes_per_frame = 0.0;
  double bytes_per_series_hour = 0.0;   // at the 5-min sample cadence
  double restore_ms = 0.0;              // WAL-only replay of the full run
  std::uint64_t snapshot_file_bytes = 0;
  std::uint64_t snapshot_raw_bytes = 0;      // v4 accounting: raw cost
  std::uint64_t snapshot_encoded_bytes = 0;  // v4 accounting: actual cost
};

// Storage efficiency of the payload codec (engine payload v4): the same
// deterministic run logged with compressed block frames vs legacy per-op
// frames, then recovered from the WAL alone so restore_ms is dominated by
// replay.  bytes/series/hour assumes the paper's 5-minute sample cadence
// (12 observe+predict rounds per series-hour).
StorageMode bench_storage_mode(const fs::path& dir, bool compress,
                               std::size_t series, std::size_t rounds) {
  fs::remove_all(dir);
  StorageMode m;
  m.name = compress ? "compressed" : "raw";
  serve::EngineConfig config =
      engine_config(dir, persist::FsyncPolicy::EveryN);
  config.durability.compress_payloads = compress;
  {
    serve::PredictionEngine engine(predictors::make_paper_pool(5), config);
    Workload load(series);
    for (std::size_t i = 0; i < rounds; ++i) {
      (void)engine.predict(load.keys);
      load.fill();
      engine.observe(load.batch);
    }
    for (const std::uint64_t pos : engine.wal_positions()) m.frames += pos;
  }  // crash: the log is the only copy of the run
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") {
      m.wal_bytes += entry.file_size();
    }
  }
  m.records = 2 * series * rounds;
  m.wal_bytes_per_frame =
      static_cast<double>(m.wal_bytes) / static_cast<double>(m.frames);
  m.bytes_per_series_hour = static_cast<double>(m.wal_bytes) /
                            (static_cast<double>(series) *
                             static_cast<double>(rounds)) *
                            12.0;

  const auto start = std::chrono::steady_clock::now();
  // No snapshot exists yet, so the override supplies the full identity —
  // restoring a WAL-only directory under a different shard count is refused.
  auto restored = serve::PredictionEngine::restore(
      predictors::make_paper_pool(5), dir, config);
  m.restore_ms = seconds_since(start) * 1e3;

  (void)restored->snapshot();
  restored.reset();
  for (const auto& info : persist::list_snapshots(dir)) {
    m.snapshot_file_bytes =
        std::max<std::uint64_t>(m.snapshot_file_bytes, fs::file_size(info.path));
    const auto loaded = persist::load_snapshot(info.path);
    const auto desc = serve::PredictionEngine::describe_payload(loaded.payload);
    for (std::size_t s = 0; s < desc.raw_bytes.size(); ++s) {
      m.snapshot_raw_bytes += desc.raw_bytes[s];
      m.snapshot_encoded_bytes += desc.encoded_bytes[s];
    }
  }
  fs::remove_all(dir);
  return m;
}

std::vector<StorageMode> bench_storage(const fs::path& scratch, bool quick) {
  const std::size_t series = quick ? 64 : 256;
  const std::size_t rounds = quick ? 64 : 240;  // 240 rounds = 20h at 5-min
  std::printf(
      "\nstorage codec (%zu series, %zu rounds, 5-min cadence, every-64)\n",
      series, rounds);
  std::printf("%12s %12s %10s %12s %16s %12s %14s\n", "payload", "wal bytes",
              "B/frame", "B/series-h", "snapshot bytes", "snap raw",
              "restore ms");
  std::vector<StorageMode> modes;
  for (const bool compress : {false, true}) {
    StorageMode m =
        bench_storage_mode(scratch / "storage", compress, series, rounds);
    std::printf("%12s %12llu %10.1f %12.1f %16llu %12llu %14.2f\n",
                m.name.c_str(),
                static_cast<unsigned long long>(m.wal_bytes),
                m.wal_bytes_per_frame, m.bytes_per_series_hour,
                static_cast<unsigned long long>(m.snapshot_file_bytes),
                static_cast<unsigned long long>(m.snapshot_raw_bytes),
                m.restore_ms);
    modes.push_back(std::move(m));
  }
  if (modes.size() == 2 && modes[1].bytes_per_series_hour > 0) {
    std::printf("  WAL bytes/series/hour reduction: %.1fx\n",
                modes[0].bytes_per_series_hour /
                    modes[1].bytes_per_series_hour);
  }
  return modes;
}

struct SnapshotPoint {
  std::size_t series = 0;
  double snapshot_ms = 0.0;
  double max_shard_pause_ms = 0.0;  // longest single-shard lock hold
  double restore_ms = 0.0;
  std::uint64_t bytes = 0;
};

SnapshotPoint bench_snapshot_cycle(const fs::path& scratch, bool quick) {
  const std::size_t series = quick ? 64 : 256;
  const fs::path dir = scratch / "snapshot_cycle";
  fs::remove_all(dir);
  serve::PredictionEngine engine(
      predictors::make_paper_pool(5),
      engine_config(dir, persist::FsyncPolicy::EveryN));
  Workload load(series);
  for (std::size_t i = 0; i < engine.config().train_samples + 8; ++i) {
    load.fill();
    (void)engine.predict(load.keys);
    engine.observe(load.batch);
  }

  auto start = std::chrono::steady_clock::now();
  (void)engine.snapshot();
  const double snapshot_ms = seconds_since(start) * 1e3;
  // The serving pause is NOT the wall time above: shards are serialized one
  // at a time, so traffic only ever waits on the longest single-shard hold.
  const double pause_ms = engine.stats().snapshot_max_pause_seconds * 1e3;

  std::uint64_t bytes = 0;
  for (const auto& info : persist::list_snapshots(dir)) {
    bytes = std::max<std::uint64_t>(bytes, fs::file_size(info.path));
  }

  start = std::chrono::steady_clock::now();
  auto restored =
      serve::PredictionEngine::restore(predictors::make_paper_pool(5), dir);
  const double restore_ms = seconds_since(start) * 1e3;
  restored.reset();
  fs::remove_all(dir);

  std::printf("\nsnapshot/restore cycle (%zu trained series)\n", series);
  std::printf("  snapshot (wall time)       %8.2f ms, %llu bytes on disk\n",
              snapshot_ms, static_cast<unsigned long long>(bytes));
  std::printf("  max single-shard pause     %8.2f ms\n", pause_ms);
  std::printf("  restore (load + wal replay)%8.2f ms\n", restore_ms);
  return {series, snapshot_ms, pause_ms, restore_ms, bytes};
}

void write_json(const char* path, const std::vector<WalPoint>& wal,
                const std::vector<BatchSweepPoint>& sweep,
                const std::vector<StorageMode>& storage,
                const SnapshotPoint& snap) {
  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(out, "{\n    \"wal_observe_path\": [\n");
  for (std::size_t i = 0; i < wal.size(); ++i) {
    std::fprintf(out,
                 "      {\"mode\": \"%s\", \"series_steps_per_sec\": %.0f, "
                 "\"overhead_pct\": %.1f}%s\n",
                 wal[i].name.c_str(), wal[i].rate, wal[i].overhead_pct,
                 i + 1 < wal.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"wal_batch_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(out,
                 "      {\"batch\": %zu, \"off_per_sec\": %.0f, "
                 "\"wal_every_64_per_sec\": %.0f, \"overhead_pct\": %.1f, "
                 "\"wal_async_per_sec\": %.0f, \"async_overhead_pct\": %.1f}%s\n",
                 sweep[i].batch, sweep[i].off_rate, sweep[i].wal_rate,
                 sweep[i].overhead_pct, sweep[i].async_rate,
                 sweep[i].async_overhead_pct, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"storage_codec\": [\n");
  for (std::size_t i = 0; i < storage.size(); ++i) {
    const StorageMode& m = storage[i];
    std::fprintf(out,
                 "      {\"payload\": \"%s\", \"wal_bytes\": %llu, "
                 "\"frames\": %llu, \"records\": %llu, "
                 "\"wal_bytes_per_frame\": %.1f, "
                 "\"bytes_per_series_hour\": %.1f, "
                 "\"snapshot_bytes\": %llu, \"snapshot_raw_bytes\": %llu, "
                 "\"snapshot_encoded_bytes\": %llu, "
                 "\"restore_ms\": %.2f}%s\n",
                 m.name.c_str(), static_cast<unsigned long long>(m.wal_bytes),
                 static_cast<unsigned long long>(m.frames),
                 static_cast<unsigned long long>(m.records),
                 m.wal_bytes_per_frame, m.bytes_per_series_hour,
                 static_cast<unsigned long long>(m.snapshot_file_bytes),
                 static_cast<unsigned long long>(m.snapshot_raw_bytes),
                 static_cast<unsigned long long>(m.snapshot_encoded_bytes),
                 m.restore_ms, i + 1 < storage.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"snapshot_cycle\": {\"series\": %zu, "
               "\"snapshot_ms\": %.2f, \"snapshot_max_shard_pause_ms\": %.2f, "
               "\"restore_ms\": %.2f, \"snapshot_bytes\": %llu}\n}\n",
               snap.series, snap.snapshot_ms, snap.max_shard_pause_ms,
               snap.restore_ms, static_cast<unsigned long long>(snap.bytes));
  std::fclose(out);
  std::printf("\ndurability metrics written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // --json PATH : also emit the measurements as a JSON fragment
  // --quick     : smaller workload (CI smoke)
  const char* json_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--quick]\n", argv[0]);
      return 1;
    }
  }
  const fs::path scratch =
      fs::temp_directory_path() / "larp_bench_wal_overhead";
  std::printf("================================================================\n");
  std::printf("bench_wal_overhead — snapshot + WAL durability cost\n");
  std::printf("================================================================\n\n");
  const auto wal = bench_wal_overhead(scratch, quick);
  const auto sweep = bench_batch_sweep(scratch, quick);
  const auto storage = bench_storage(scratch, quick);
  const auto snap = bench_snapshot_cycle(scratch, quick);
  fs::remove_all(scratch);
  if (json_path) write_json(json_path, wal, sweep, storage, snap);
  return 0;
}
