// Extension bench: rolling-origin (walk-forward) evaluation with periodic
// re-training — the deployment-faithful protocol the Figure-1 prototype
// implies — across the catalog's trace families, in raw units.
//
// Shape to check: the ordering of strategies from the cross-validated
// experiments carries over to walk-forward operation, and re-training on
// the QA cadence never hurts materially (it pays on regime-switching
// traces).
#include <iostream>

#include "bench_common.hpp"
#include "core/rolling.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace larp;
  bench::banner("Extension: rolling-origin evaluation",
                "walk-forward with periodic re-training (raw-unit MSE)");

  const std::vector<std::pair<std::string, std::string>> traces = {
      {"VM2", "CPU_usedsec"}, {"VM2", "NIC1_received"}, {"VM2", "load15"},
      {"VM4", "CPU_usedsec"}, {"VM4", "VD1_write"},     {"VM5", "NIC2_received"},
      {"VM1", "CPU_usedsec"},
  };

  core::TextTable table({"trace", "LAR", "P-LAR", "Cum.MSE", "best single",
                         "retrains", "expert usage (L/A/S)"});
  const auto rows = parallel_map(traces.size(), [&](std::size_t i) {
    const auto& [vm, metric] = traces[i];
    const auto trace = tracegen::make_trace(vm, metric, /*seed=*/12);
    core::RollingOriginConfig config;
    config.lar = bench::paper_config(vm);
    config.initial_train = trace.size() / 2;
    config.retrain_every = 48;
    const auto pool = predictors::make_paper_pool(config.lar.window);
    const auto r = core::rolling_origin_evaluate(trace.values, pool, config);

    const double best_single =
        *std::min_element(r.mse_single.begin(), r.mse_single.end());
    std::vector<std::string> row;
    row.push_back(vm + "/" + metric);
    row.push_back(core::TextTable::num(r.mse_lar, 2));
    row.push_back(core::TextTable::num(r.mse_oracle, 2));
    row.push_back(core::TextTable::num(r.mse_nws, 2));
    row.push_back(core::TextTable::num(best_single, 2));
    row.push_back(std::to_string(r.retrains));
    row.push_back(std::to_string(r.expert_usage[0]) + "/" +
                  std::to_string(r.expert_usage[1]) + "/" +
                  std::to_string(r.expert_usage[2]));
    return row;
  });
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  std::printf("\nnotes: MSEs are RAW units (deployment view), so rows are\n"
              "not comparable across traces — compare columns within a row.\n"
              "P-LAR <= everything; the LAR's expert-usage mix shifts with\n"
              "the trace family (AR-heavy on spiky NICs, LAST-leaning on\n"
              "memory walks), echoing Table 3's winners.\n");
  return 0;
}
