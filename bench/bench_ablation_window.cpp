// Ablation: prediction window / order m.  The paper uses m = 5 for the
// five-minute traces and m = 16 for VM1's thirty-minute trace; this sweep
// shows the accuracy/MSE trade-off across m on both trace shapes.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace larp;
  bench::banner("Ablation: prediction window m",
                "LAR MSE and accuracy vs window size (paper: m=5 and m=16)");

  const auto sweep_vm = [&](const std::string& vm,
                            const std::vector<std::string>& metrics) {
    std::printf("--- %s (%s) ---\n", vm.c_str(),
                tracegen::vm_spec(vm).description.c_str());
    core::TextTable table(
        {"m", "avg accuracy", "avg LAR MSE", "avg P-LAR MSE", "avg AR MSE"});
    for (std::size_t m : {3u, 5u, 8u, 16u, 32u}) {
      double acc = 0.0, mse = 0.0, oracle = 0.0, ar = 0.0;
      int scored = 0;
      for (const auto& metric : metrics) {
        const auto trace = tracegen::make_trace(vm, metric, /*seed=*/10);
        core::LarConfig config;
        config.window = m;
        const auto pool = predictors::make_paper_pool(m);
        ml::CrossValidationPlan plan;
        plan.folds = 5;
        Rng rng(m * 7 + 3);
        const auto result =
            core::cross_validate(trace.values, pool, config, plan, rng);
        if (result.degenerate) continue;
        acc += result.lar_accuracy;
        mse += result.mse_lar;
        oracle += result.mse_oracle;
        ar += result.mse_single[1];
        ++scored;
      }
      table.add_row({std::to_string(m), core::TextTable::pct(acc / scored),
                     core::TextTable::num(mse / scored),
                     core::TextTable::num(oracle / scored),
                     core::TextTable::num(ar / scored)});
    }
    table.print(std::cout);
    std::printf("\n");
  };

  sweep_vm("VM2", {"CPU_usedsec", "NIC1_received", "CPU_ready"});
  sweep_vm("VM1", {"CPU_usedsec", "VD1_read", "NIC1_received"});

  std::printf("expected shape: mid-range m balances context vs agility; very\n"
              "large m starves the training set (fewer windows) and slows the\n"
              "AR fit's adaptation, matching the paper's choice of m=5/16.\n");
  return 0;
}
