// Figure 5: best-predictor selection for trace VM2_PktIn — network packets
// received per second, 12-hour period at 5-minute samples.
//
// Same layout as Figure 4, on the bursty network trace where the selection
// dynamics differ: heavy bursts favour the smoothing expert, quiet stretches
// favour LAST/AR — so the strips should show more alternation than Fig. 4.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "util/csv.hpp"

// Optional argv[1]: path for a CSV of the three label series (plotting).
int main(int argc, char** argv) {
  using namespace larp;
  bench::banner("Figure 5", "best-predictor selection, trace VM2_PktIn");

  const std::size_t display = 144;
  const auto trace = tracegen::make_trace("VM2", "PktIn", /*seed=*/2007,
                                          /*samples=*/2 * display);
  const auto config = bench::paper_config("VM2");
  const auto pool = predictors::make_paper_pool(config.window);
  const auto fold = core::evaluate_fold(trace.values, display, pool, config);

  const std::vector<std::string> names{"1-LAST", "2-AR", "3-SW_AVG"};
  std::printf("observed best predictor (top plot):\n%s\n",
              core::render_label_strip(fold.observed_best, names).c_str());
  std::printf("LARPredictor k-NN selection (middle plot):\n%s\n",
              core::render_label_strip(fold.lar_choice, names).c_str());
  std::printf("NWS cumulative-MSE selection (bottom plot):\n%s\n",
              core::render_label_strip(fold.nws_choice, names).c_str());

  // Switching dynamics: how often each strip changes class per step.
  const auto switch_rate = [](const std::vector<std::size_t>& xs) {
    std::size_t switches = 0;
    for (std::size_t i = 1; i < xs.size(); ++i) switches += xs[i] != xs[i - 1];
    return xs.size() > 1 ? 100.0 * switches / (xs.size() - 1) : 0.0;
  };
  core::TextTable table({"series", "switch rate", "accuracy vs observed"});
  table.add_row({"observed best",
                 core::TextTable::num(switch_rate(fold.observed_best), 1) + "%",
                 "-"});
  table.add_row({"LAR (kNN)",
                 core::TextTable::num(switch_rate(fold.lar_choice), 1) + "%",
                 core::TextTable::pct(fold.lar_accuracy)});
  table.add_row({"NWS (Cum.MSE)",
                 core::TextTable::num(switch_rate(fold.nws_choice), 1) + "%",
                 core::TextTable::pct(fold.nws_accuracy)});
  table.print(std::cout);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    csv::write_row(out, {"step", "observed_best", "lar", "nws"});
    for (std::size_t i = 0; i < fold.steps(); ++i) {
      csv::write_row(out, {std::to_string(i),
                           std::to_string(fold.observed_best[i] + 1),
                           std::to_string(fold.lar_choice[i] + 1),
                           std::to_string(fold.nws_choice[i] + 1)});
    }
    std::printf("\nwrote label series (paper class numbering) to %s\n", argv[1]);
  }

  std::printf("\n(paper: the best model for a given resource trace varies as a\n"
              " function of time; the cumulative-MSE selector switches rarely\n"
              " because all history weighs in, while the LAR tracks the\n"
              " workload shape — compare the middle and bottom strips)\n");
  return 0;
}
