// Selector cost/accuracy grid: the O(1) hardware-style fast tier
// (tournament / perceptron / global-history) head-to-head against the
// paper's k-NN selection and the hindsight oracle.
//
// Two measurements:
//   * select() micro-cost — ns/select and selects/sec for every selector,
//     the k-NN rows at a catalog-typical index size.  The fast tier's
//     reason to exist is this column: counter argmax vs index query.
//   * accuracy — per-VM-family MSE ratio vs the hindsight oracle over the
//     catalog's test halves, every selector scoring the SAME pool forecasts
//     on the same walk (so the ratio isolates pure selection skill).
//
// Regenerates results/BENCH_selectors.json (reconciled into
// docs/PERFORMANCE.md).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/lar_predictor.hpp"
#include "ml/framing.hpp"
#include "ml/knn.hpp"
#include "ml/normalizer.hpp"
#include "ml/pca.hpp"
#include "predictors/pool.hpp"
#include "selection/history_selector.hpp"
#include "selection/knn_selector.hpp"
#include "selection/nws_selector.hpp"
#include "selection/perceptron_selector.hpp"
#include "selection/selector.hpp"
#include "selection/tournament_selector.hpp"
#include "tracegen/catalog.hpp"

namespace {

using namespace larp;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kWindow = 5;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Trains the paper pipeline's selection index on `normalized` (labeling
/// walk -> PCA -> 3-NN) and returns the ready selector, exactly what
/// core::LarPredictor::train() installs.
std::unique_ptr<selection::Selector> make_knn_selector(
    predictors::PredictorPool& pool, std::span<const double> normalized,
    ml::KnnBackend backend) {
  const auto labels = core::label_best_predictors(pool, normalized, kWindow);
  const auto framed = ml::frame_supervised(normalized, kWindow);
  ml::Pca pca;
  pca.fit(framed.windows, ml::PcaPolicy{0, 0.85});
  ml::KnnClassifier classifier(3, backend);
  classifier.fit(pca.transform(framed.windows), labels);
  return std::make_unique<selection::KnnSelector>(std::move(pca),
                                                  std::move(classifier));
}

struct CostRow {
  std::string name;
  double ns_per_select = 0.0;
  double selects_per_sec = 0.0;
};

/// One timed pass of select() over a rotating bank of real windows (so
/// index queries see varied inputs); the pick checksum defeats dead-code
/// elimination.  The caller interleaves passes across selectors and keeps
/// each selector's fastest — min-of-reps is the standard robust estimator
/// for micro-costs, and interleaving makes every selector sample the same
/// noise phases of the machine, keeping the cross-selector RATIOS stable
/// even when a run lands on a busy box.
double time_select_once(selection::Selector& selector,
                        const std::vector<std::vector<double>>& windows,
                        std::size_t iterations) {
  // Power-of-two bank so the rotation is a mask, not a divide: the loop
  // overhead must stay well under the cheapest selector being timed.
  const std::size_t mask = windows.size() - 1;
  std::size_t checksum = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    checksum += selector.select(windows[i & mask]);
  }
  const double elapsed = seconds_since(start);
  if (checksum == ~std::size_t{0}) std::printf("(impossible)\n");
  return elapsed;
}

std::vector<CostRow> bench_select_cost(bool quick) {
  // A catalog-typical trace backs both the window bank and the k-NN index
  // (~280 training windows — the index size a per-series selector serves
  // with in the engine).
  const auto trace = tracegen::make_trace("VM4", "CPU_usedsec", /*seed=*/6);
  auto pool = predictors::make_paper_pool(kWindow);
  ml::ZScoreNormalizer normalizer;
  normalizer.fit(trace.values);
  const auto normalized = normalizer.transform(trace.values);
  pool.fit_all(normalized);

  std::vector<std::vector<double>> windows;
  for (std::size_t i = 0; i + kWindow <= normalized.size() && i < 256; ++i) {
    windows.emplace_back(normalized.begin() + static_cast<std::ptrdiff_t>(i),
                         normalized.begin() +
                             static_cast<std::ptrdiff_t>(i + kWindow));
  }
  // time_select() rotates with a mask — keep the bank a power of two.
  while (windows.size() & (windows.size() - 1)) windows.pop_back();

  const std::size_t pool_size = pool.size();
  // Rep windows are kept short (ms-scale): on a shared box the min-of-reps
  // estimator works best when each rep has little time to absorb noise.
  const std::size_t fast_iters = quick ? 200'000 : 1'000'000;
  const std::size_t index_iters = quick ? 20'000 : 100'000;

  struct Candidate {
    std::string name;
    std::unique_ptr<selection::Selector> selector;
    std::size_t iterations;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"Tournament(2b)",
                        std::make_unique<selection::TournamentSelector>(pool_size),
                        fast_iters});
  candidates.push_back({"Perceptron",
                        std::make_unique<selection::PerceptronSelector>(pool_size),
                        fast_iters});
  candidates.push_back(
      {"GlobalHistory(4,64)",
       std::make_unique<selection::GlobalHistorySelector>(pool_size),
       fast_iters});
  candidates.push_back(
      {"Cum.MSE",
       std::make_unique<selection::CumulativeMseSelector>(pool_size),
       fast_iters});
  candidates.push_back(
      {"W-Cum.MSE(2)",
       std::make_unique<selection::WindowedCumMseSelector>(pool_size, 2),
       fast_iters});
  candidates.push_back(
      {"EWMA-MSE(0.9)",
       std::make_unique<selection::EwmaMseSelector>(pool_size, 0.9),
       fast_iters});
  candidates.push_back({"kNN(brute)",
                        make_knn_selector(pool, normalized,
                                          ml::KnnBackend::BruteForce),
                        index_iters});
  candidates.push_back({"kNN(kd-tree)",
                        make_knn_selector(pool, normalized,
                                          ml::KnnBackend::KdTree),
                        index_iters});

  // Give the trainable selectors realistic (non-uniform) internal state.
  std::vector<double> forecasts;
  for (auto& candidate : candidates) {
    pool.reset_all();
    for (std::size_t i = 0; i < kWindow; ++i) pool.observe_all(normalized[i]);
    for (std::size_t i = 0; i + kWindow < normalized.size() && i < 64; ++i) {
      const auto win =
          std::span<const double>(normalized).subspan(i, kWindow);
      pool.predict_all_into(win, forecasts);
      (void)candidate.selector->select(win);
      candidate.selector->record(forecasts, normalized[i + kWindow]);
      pool.observe_all(normalized[i + kWindow]);
    }
  }

  // Warm-up pass per selector (first-touch, branch training), off the clock.
  for (auto& candidate : candidates) {
    for (const auto& window : windows) (void)candidate.selector->select(window);
  }
  constexpr std::size_t kRounds = 7;
  std::vector<double> best(candidates.size(), 0.0);
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const double elapsed = time_select_once(*candidates[c].selector, windows,
                                              candidates[c].iterations);
      if (round == 0 || elapsed < best[c]) best[c] = elapsed;
    }
  }

  std::vector<CostRow> rows;
  std::printf("select() micro-cost (catalog index, pool of %zu)\n", pool_size);
  std::printf("  %-22s %12s %16s\n", "selector", "ns/select", "selects/sec");
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    CostRow row;
    row.name = candidates[c].name;
    const auto iters = static_cast<double>(candidates[c].iterations);
    row.ns_per_select = best[c] * 1e9 / iters;
    row.selects_per_sec = iters / best[c];
    rows.push_back(row);
    std::printf("  %-22s %12.1f %16.0f\n", row.name.c_str(),
                row.ns_per_select, row.selects_per_sec);
  }
  return rows;
}

struct FamilyAccuracy {
  std::string family;
  std::size_t traces_scored = 0;
  double oracle_mse = 0.0;  // mean over scored traces
  std::map<std::string, double> mse_ratio;  // selector -> mse / oracle mse
};

/// One trace: train the index half, walk the test half with every selector
/// scoring the SAME pool forecasts; returns per-selector MSE and oracle MSE.
struct TraceScore {
  bool scored = false;
  double oracle_mse = 0.0;
  std::map<std::string, double> mse;
};

TraceScore score_trace(const std::string& vm, const std::string& metric) {
  const auto trace = tracegen::make_trace(vm, metric, /*seed=*/6);
  const std::size_t half = trace.values.size() / 2;
  if (half < kWindow + 8) return {};

  ml::ZScoreNormalizer normalizer;
  normalizer.fit({trace.values.data(), half});
  const auto normalized = normalizer.transform(trace.values);
  auto pool = predictors::make_paper_pool(kWindow);
  pool.fit_all({normalized.data(), half});

  const std::size_t pool_size = pool.size();
  std::vector<std::pair<std::string, std::unique_ptr<selection::Selector>>>
      selectors;
  selectors.emplace_back(
      "Tournament(2b)",
      std::make_unique<selection::TournamentSelector>(pool_size));
  selectors.emplace_back(
      "Perceptron", std::make_unique<selection::PerceptronSelector>(pool_size));
  selectors.emplace_back(
      "GlobalHistory(4,64)",
      std::make_unique<selection::GlobalHistorySelector>(pool_size));
  selectors.emplace_back(
      "Cum.MSE",
      std::make_unique<selection::CumulativeMseSelector>(pool_size));
  selectors.emplace_back(
      "W-Cum.MSE(2)",
      std::make_unique<selection::WindowedCumMseSelector>(pool_size, 2));
  selectors.emplace_back(
      "EWMA-MSE(0.9)",
      std::make_unique<selection::EwmaMseSelector>(pool_size, 0.9));
  selectors.emplace_back(
      "kNN(brute)",
      make_knn_selector(pool, {normalized.data(), half},
                        ml::KnnBackend::BruteForce));

  // Walk the test half; the pool's online state is primed with the last
  // training window so the first test step is causal.
  pool.reset_all();
  for (std::size_t i = half - kWindow; i < half; ++i) {
    pool.observe_all(normalized[i]);
  }
  TraceScore score;
  std::map<std::string, double> sq_sum;
  double oracle_sq_sum = 0.0;
  std::size_t steps = 0;
  std::vector<double> forecasts;
  for (std::size_t i = half - kWindow; i + kWindow < normalized.size(); ++i) {
    const auto win = std::span<const double>(normalized).subspan(i, kWindow);
    const double target = normalized[i + kWindow];
    pool.predict_all_into(win, forecasts);
    bool finite = true;
    for (double f : forecasts) finite = finite && std::isfinite(f);
    if (finite) {
      for (auto& [name, selector] : selectors) {
        const std::size_t pick = selector->select(win);
        const double err = forecasts[pick] - target;
        sq_sum[name] += err * err;
      }
      const std::size_t best = selection::best_forecast_label(forecasts, target);
      const double oracle_err = forecasts[best] - target;
      oracle_sq_sum += oracle_err * oracle_err;
      ++steps;
      for (auto& [name, selector] : selectors) {
        selector->record(forecasts, target);
      }
    }
    pool.observe_all(target);
  }
  if (steps == 0) return {};
  score.oracle_mse = oracle_sq_sum / static_cast<double>(steps);
  // A (near-)zero oracle MSE means a degenerate trace (constant / perfectly
  // predictable) where every ratio explodes; skip it like the paper tables
  // skip degenerate folds.
  if (score.oracle_mse < 1e-12) return {};
  for (auto& [name, sum] : sq_sum) {
    score.mse[name] = sum / static_cast<double>(steps);
  }
  score.scored = true;
  return score;
}

std::vector<FamilyAccuracy> bench_accuracy(bool quick) {
  std::vector<FamilyAccuracy> families;
  std::size_t skipped = 0;
  for (const auto& vm : tracegen::paper_vms()) {
    FamilyAccuracy family;
    family.family = vm.vm_id;
    std::map<std::string, double> ratio_sum;
    double oracle_sum = 0.0;
    std::size_t metrics_used = 0;
    for (const auto& metric : tracegen::paper_metrics()) {
      const auto score = score_trace(vm.vm_id, metric);
      if (!score.scored) {
        ++skipped;
        continue;
      }
      oracle_sum += score.oracle_mse;
      for (const auto& [name, mse] : score.mse) {
        ratio_sum[name] += mse / score.oracle_mse;
      }
      ++metrics_used;
      if (quick && metrics_used >= 2) break;
    }
    if (metrics_used == 0) continue;
    family.traces_scored = metrics_used;
    family.oracle_mse = oracle_sum / static_cast<double>(metrics_used);
    for (const auto& [name, sum] : ratio_sum) {
      family.mse_ratio[name] = sum / static_cast<double>(metrics_used);
    }
    families.push_back(std::move(family));
  }

  std::printf("\ntest-half MSE ratio vs hindsight oracle (lower = better; "
              "1.0 = oracle)\n");
  if (!families.empty()) {
    std::printf("  %-8s %6s", "family", "traces");
    for (const auto& [name, ratio] : families.front().mse_ratio) {
      std::printf(" %20s", name.c_str());
    }
    std::printf("\n");
    for (const auto& family : families) {
      std::printf("  %-8s %6zu", family.family.c_str(),
                  family.traces_scored);
      for (const auto& [name, ratio] : family.mse_ratio) {
        std::printf(" %20.3f", ratio);
      }
      std::printf("\n");
    }
  }
  if (skipped > 0) {
    std::printf("  (%zu degenerate traces skipped: near-zero oracle MSE)\n",
                skipped);
  }
  return families;
}

void write_json(const char* path, const std::vector<CostRow>& cost,
                const std::vector<FamilyAccuracy>& accuracy) {
  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    std::exit(1);
  }
  double knn_ns = 0.0;
  for (const auto& row : cost) {
    if (row.name == "kNN(brute)") knn_ns = row.ns_per_select;
  }
  std::fprintf(out, "{\n    \"select_cost\": [\n");
  for (std::size_t i = 0; i < cost.size(); ++i) {
    const double speedup =
        cost[i].ns_per_select > 0.0 ? knn_ns / cost[i].ns_per_select : 0.0;
    std::fprintf(out,
                 "      {\"selector\": \"%s\", \"ns_per_select\": %.1f, "
                 "\"selects_per_sec\": %.0f, \"speedup_vs_knn_brute\": "
                 "%.1f}%s\n",
                 cost[i].name.c_str(), cost[i].ns_per_select,
                 cost[i].selects_per_sec, speedup,
                 i + 1 < cost.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"mse_ratio_vs_oracle\": [\n");
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    std::fprintf(out, "      {\"family\": \"%s\", \"traces\": %zu, "
                 "\"oracle_mse\": %.6f",
                 accuracy[i].family.c_str(), accuracy[i].traces_scored,
                 accuracy[i].oracle_mse);
    for (const auto& [name, ratio] : accuracy[i].mse_ratio) {
      std::fprintf(out, ", \"%s\": %.3f", name.c_str(), ratio);
    }
    std::fprintf(out, "}%s\n", i + 1 < accuracy.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n}\n");
  std::fclose(out);
  std::printf("\nselector metrics written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // --json PATH : also emit the measurements as a JSON fragment
  // --quick     : smaller workload (CI smoke)
  const char* json_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--quick]\n", argv[0]);
      return 1;
    }
  }
  larp::bench::banner("Selector cost/accuracy grid",
                      "O(1) fast tier vs k-NN selection vs hindsight oracle");
  const auto cost = bench_select_cost(quick);
  const auto accuracy = bench_accuracy(quick);
  std::printf(
      "\nexpected shape: the three fast selectors sit at a few ns/select\n"
      "(a P-way argmax over bytes of state) — two orders of magnitude under\n"
      "the k-NN index query — while their MSE-vs-oracle ratio stays in the\n"
      "same band as k-NN on most families: the cold tier trades a little\n"
      "selection skill for a select() cheap enough to serve from the very\n"
      "first window.\n");
  if (json_path) write_json(json_path, cost, accuracy);
  return 0;
}
