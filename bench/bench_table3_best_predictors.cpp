// Table 3: best single predictor of every (performance metric × VM) trace,
// with '*' where the LARPredictor matched or beat the best single model and
// NaN where the trace is degenerate (idle device, zero variance).
//
// Shape to check against the paper: AR wins most cells; LAST wins some
// memory cells; SW_AVG wins a few bursty cells; NaN cells appear on VM3 and
// VM5's unattached devices; '*' appears on a meaningful fraction of cells
// (the paper's 44.23% better-than-best-expert statistic).
#include <iostream>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace larp;
  bench::banner("Table 3", "best predictors of all the trace data");

  const std::vector<std::string> vms{"VM1", "VM2", "VM3", "VM4", "VM5"};
  core::TextTable table({"Perform. Metrics", "VM1", "VM2", "VM3", "VM4", "VM5"});

  int starred = 0, scored = 0, nan_cells = 0;
  std::map<std::string, int> wins;
  for (const auto& metric : tracegen::paper_metrics()) {
    std::vector<std::string> row{metric};
    for (const auto& vm : vms) {
      const auto result = bench::run_trace(vm, metric, /*seed=*/1);
      if (result.degenerate) {
        row.push_back("NaN");
        ++nan_cells;
        continue;
      }
      ++scored;
      const std::size_t best = result.best_single_label();
      std::string cell =
          best == 0 ? "LAST" : best == 1 ? "AR" : "SW_AVG";
      ++wins[cell];
      if (result.lar_beats_best_single()) {
        cell += "*";
        ++starred;
      }
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf("\n'*' = LARPredictor achieved equal or better MSE than the "
              "best single predictor (paper: 44.23%% of traces).\n");
  std::printf("here: %d of %d scored cells starred (%.2f%%), %d NaN cells "
              "(idle devices; paper Table 3 also shows NaN cells).\n",
              starred, scored, 100.0 * starred / scored, nan_cells);
  std::printf("single-model wins: LAST=%d AR=%d SW_AVG=%d (paper: \"overall, "
              "the AR model performed better\")\n",
              wins["LAST"], wins["AR"], wins["SW_AVG"]);
  return 0;
}
