// Serving-layer benchmark backing the PR's two performance claims:
//
//   1. serve::PredictionEngine scales with worker threads: series/sec on a
//      256-series predict+observe workload is measured at 1, N/2 and N
//      threads (N = hardware concurrency).
//   2. the online-learning hot path no longer pays the per-step kd-tree
//      rebuild: KnnClassifier::add with the kd-tree backend is measured at
//      geometrically growing index sizes — the per-add cost must stay flat
//      (amortized O(log N)) instead of growing linearly as it did when every
//      add rebuilt the tree (O(N log N));
//   3. the depth cap defuses adversarial insertion orders: sorted inserts —
//      which would otherwise degenerate the tree to depth ~N/2 — keep both
//      the amortized add cost and the query cost logarithmic.
//
// With --net it additionally drives the epoll front-end end to end: a real
// net::Server on a loopback ephemeral port, real client connections, the
// full frame encode/CRC/decode path — swept over server thread counts to
// produce the 1→N-core scaling curve recorded in BENCH_hotpath.json.
//
// Plain chrono timing like the table/figure benches (exit code 0 always;
// the numbers are the artifact).
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/prediction_engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace larp;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Runs the steady-state predict+observe loop on `series` synthetic AR(1)
/// streams and returns series-steps per second.
double engine_throughput(std::size_t threads, std::size_t series,
                         std::size_t steps) {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 32;
  config.threads = threads;
  config.train_samples = 48;  // short warm-up; the steady state is the metric

  serve::PredictionEngine engine(predictors::make_paper_pool(5), config);

  Rng parent(2007);
  std::vector<tsdb::SeriesKey> keys(series);
  std::vector<Rng> rngs;
  std::vector<double> level(series, 0.0);
  rngs.reserve(series);
  for (std::size_t s = 0; s < series; ++s) {
    keys[s] = {"host" + std::to_string(s / 8), "dev" + std::to_string(s % 8),
               "cpu"};
    rngs.push_back(parent.split(s));
  }
  std::vector<serve::Observation> batch(series);
  const auto fill = [&] {
    for (std::size_t s = 0; s < series; ++s) {
      level[s] = 0.8 * level[s] + rngs[s].normal(0.0, 2.0);
      batch[s] = {keys[s], 50.0 + level[s]};
    }
  };

  for (std::size_t i = 0; i < config.train_samples; ++i) {
    fill();
    engine.observe(batch);
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    (void)engine.predict(keys);
    fill();
    engine.observe(batch);
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(series) * static_cast<double>(steps) / elapsed;
}

struct ScalingPoint {
  std::size_t threads = 0;
  double rate = 0.0;
};

// Fixed sweep {1, 2, 4} (plus the core count when larger) so the recorded
// curve always has >= 3 points: on a small machine the over-subscribed
// configs measure the cost of threads the hardware cannot parallelize,
// which is itself part of the honest trajectory.
std::vector<std::size_t> scaling_thread_counts() {
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts{1, 2, 4};
  if (cores > 4) counts.push_back(cores);
  return counts;
}

std::vector<ScalingPoint> bench_engine_scaling(bool quick) {
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<std::size_t> thread_counts = scaling_thread_counts();

  const std::size_t series = quick ? 64 : 256;
  const std::size_t steps = quick ? 8 : 24;
  std::printf("PredictionEngine throughput (%zu series, %zu steps/config)\n",
              series, steps);
  std::printf("%10s %20s %10s\n", "threads", "series-steps/s", "scaling");
  double base = 0.0;
  double best = 0.0;
  std::vector<ScalingPoint> points;
  for (std::size_t threads : thread_counts) {
    const double rate = engine_throughput(threads, series, steps);
    if (base == 0.0) base = rate;
    best = std::max(best, rate);
    points.push_back({threads, rate});
    std::printf("%10zu %20.0f %9.2fx\n", threads, rate, rate / base);
  }
  if (cores == 1) {
    std::printf("single-core machine: thread scaling not measurable here\n");
  } else {
    std::printf("peak scaling 1 -> %zu threads: %.2fx (target > 2x)\n", cores,
                best / base);
  }
  return points;
}

/// Host facts that gate how the committed scaling curve may be read: the
/// monotonic 1 -> N improvement claim only applies when cores > 1, and a
/// non-performance governor adds frequency noise to every number.
struct HostInfo {
  std::size_t cores = 1;
  std::string governor = "unknown";
};

HostInfo host_info() {
  HostInfo info;
  info.cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (std::FILE* f = std::fopen(
          "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), f) != nullptr) {
      std::string g(buf);
      while (!g.empty() && (g.back() == '\n' || g.back() == ' ')) g.pop_back();
      if (!g.empty()) info.governor = g;
    }
    std::fclose(f);
  }
  return info;
}

/// One point of the net sweep: event-loop threads x concurrent connections,
/// with the contention picture attached so a flat spot in the curve can be
/// named (loop imbalance vs shard-lock waits vs out of cores).
struct NetPoint {
  std::size_t threads = 0;
  std::size_t connections = 0;
  double rate = 0.0;  // series-steps/s over the full wire path
  bool reuseport = false;
  double loop_busy_min = 0.0;  // busiest/idlest loop, fraction of elapsed
  double loop_busy_max = 0.0;
  std::uint64_t contended_locks = 0;
  double lock_wait_seconds = 0.0;
};

/// A real Server on a loopback ephemeral port with `server_threads` epoll
/// loops, driven by `connections` pipelined client connections (each round
/// starts the request on every connection before finishing any) splitting
/// the series between them.  The full wire path: frame encode, CRC, TCP,
/// decode, engine, reply.
NetPoint net_throughput(std::size_t server_threads, std::size_t connections,
                        std::size_t series, std::size_t steps) {
  serve::EngineConfig config;
  config.lar.window = 5;
  config.shards = 32;
  config.threads = server_threads;
  config.train_samples = 48;

  serve::PredictionEngine engine(predictors::make_paper_pool(5), config);
  net::ServerConfig server_config;
  server_config.event_threads = server_threads;
  net::Server server(engine, server_config);
  server.start();
  const std::uint16_t port = server.port();

  const std::size_t per_conn = std::max<std::size_t>(1, series / connections);
  std::vector<std::unique_ptr<net::Client>> clients;
  std::vector<std::vector<tsdb::SeriesKey>> keys(connections);
  std::vector<std::vector<double>> level(connections);
  std::vector<Rng> rngs;
  for (std::size_t c = 0; c < connections; ++c) {
    clients.push_back(std::make_unique<net::Client>("127.0.0.1", port));
    keys[c].resize(per_conn);
    level[c].assign(per_conn, 0.0);
    for (std::size_t s = 0; s < per_conn; ++s) {
      keys[c][s] = {"net" + std::to_string(c), "dev" + std::to_string(s % 8),
                    "m" + std::to_string(s)};
    }
    rngs.emplace_back(2007 + c);
  }
  std::vector<serve::Observation> batch(per_conn);
  std::vector<serve::Prediction> predictions;
  std::vector<std::uint64_t> ids(connections);
  const auto fill = [&](std::size_t c) {
    for (std::size_t s = 0; s < per_conn; ++s) {
      level[c][s] = 0.8 * level[c][s] + rngs[c].normal(0.0, 2.0);
      batch[s] = {keys[c][s], 50.0 + level[c][s]};
    }
  };
  const auto round = [&](bool predict) {
    for (std::size_t c = 0; c < connections; ++c) {
      if (predict) {
        ids[c] = clients[c]->start_predict(keys[c]);
      } else {
        fill(c);
        ids[c] = clients[c]->start_observe(batch);
      }
    }
    for (std::size_t c = 0; c < connections; ++c) {
      if (predict) {
        clients[c]->finish_predict(ids[c], per_conn, predictions);
      } else {
        (void)clients[c]->finish_observe(ids[c]);
      }
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < config.train_samples; ++i) {
    round(/*predict=*/false);
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    round(/*predict=*/true);
    round(/*predict=*/false);
  }
  const double elapsed = seconds_since(start);
  const double wall = seconds_since(wall_start);
  server.stop();

  NetPoint point;
  point.threads = server_threads;
  point.connections = connections;
  point.rate = static_cast<double>(per_conn * connections) *
               static_cast<double>(steps) / elapsed;
  point.reuseport = server.stats().reuseport;
  point.loop_busy_min = 1.0;
  for (const auto& loop : server.loop_stats()) {
    const double busy = wall > 0.0 ? loop.busy_seconds / wall : 0.0;
    point.loop_busy_min = std::min(point.loop_busy_min, busy);
    point.loop_busy_max = std::max(point.loop_busy_max, busy);
  }
  const auto engine_stats = engine.stats();
  point.contended_locks = engine_stats.contended_locks;
  point.lock_wait_seconds = engine_stats.lock_wait_seconds;
  return point;
}

std::vector<NetPoint> bench_net_scaling(bool quick) {
  const std::vector<std::size_t> thread_counts = scaling_thread_counts();
  const std::vector<std::size_t> conn_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 8};
  const std::size_t series = quick ? 64 : 256;
  const std::size_t steps = quick ? 8 : 24;
  std::printf("\nloopback server throughput (%zu series, %zu steps/config, "
              "pipelined connections)\n",
              series, steps);
  std::printf("%8s %6s %16s %8s %10s %12s %11s\n", "threads", "conns",
              "series-steps/s", "scaling", "accept", "loop busy", "lock wait");
  double base = 0.0;
  std::vector<NetPoint> points;
  for (std::size_t threads : thread_counts) {
    for (std::size_t conns : conn_counts) {
      const NetPoint p = net_throughput(threads, conns, series, steps);
      if (base == 0.0) base = p.rate;
      points.push_back(p);
      std::printf("%8zu %6zu %16.0f %7.2fx %10s %5.0f-%3.0f%% %9.1fms\n",
                  p.threads, p.connections, p.rate, p.rate / base,
                  p.reuseport ? "reuseport" : "handoff",
                  100.0 * p.loop_busy_min, 100.0 * p.loop_busy_max,
                  1e3 * p.lock_wait_seconds);
    }
  }
  return points;
}

struct AddPoint {
  std::size_t index_size = 0;
  double ns_per_add = 0.0;
  double rebuild_ns = 0.0;
};

std::vector<AddPoint> bench_kdtree_add(bool quick) {
  // Amortized per-add cost, measured the way amortization is defined: grow
  // the index from N/2 to N points so the doubling-rule rebuild and the
  // backing vectors' geometric reallocations are charged against the adds
  // that earned them.  The "rebuild" column is one full O(N log N) build at
  // size N — the price EVERY add used to pay before the incremental-insert
  // fix — so the last column is the per-add speedup the fix delivers.  The
  // amortized cost must stay within a small multiple of log2(N) (the
  // constant drifts with cache misses once the tree outgrows L2) while the
  // rebuild column grows ~N log N.
  std::printf("\nKnnClassifier::add, kd-tree backend (index grown N/2 -> N)\n");
  std::printf("%12s %14s %14s %14s %10s\n", "index size", "ns/add",
              "/log2(N)", "rebuild ns", "speedup");
  std::vector<AddPoint> results;
  std::vector<std::size_t> sizes{1024, 4096, 16384, 65536, 262144};
  if (quick) sizes = {1024, 16384};
  for (const std::size_t n : sizes) {
    Rng rng(n);
    const std::size_t half = n / 2;
    linalg::Matrix points(half, 2);
    for (auto& v : points.data()) v = rng.uniform(-10, 10);
    std::vector<std::size_t> labels(half);
    for (std::size_t i = 0; i < half; ++i) labels[i] = i % 3;
    ml::KnnClassifier knn(3, ml::KnnBackend::KdTree);
    knn.fit(std::move(points), std::move(labels));

    std::vector<std::array<double, 2>> adds(half);
    for (auto& p : adds) p = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < half; ++i) {
      knn.add(adds[i], i % 3);
    }
    const double ns_per_add =
        seconds_since(start) * 1e9 / static_cast<double>(half);

    // The old cost of one add: rebuild the whole N-point tree from scratch.
    linalg::Matrix full(n, 2);
    for (auto& v : full.data()) v = rng.uniform(-10, 10);
    start = std::chrono::steady_clock::now();
    const ml::KdTree rebuilt(full);
    const double rebuild_ns = seconds_since(start) * 1e9;

    const double log_n = std::log2(static_cast<double>(n));
    std::printf("%12zu %14.0f %14.1f %14.0f %9.0fx\n", n, ns_per_add,
                ns_per_add / log_n, rebuild_ns, rebuild_ns / ns_per_add);
    results.push_back({n, ns_per_add, rebuild_ns});
  }
  return results;
}

struct AdversarialPoint {
  std::size_t index_size = 0;
  double ns_per_add = 0.0;  // sorted-order adds, depth cap active
  double query_ns = 0.0;    // one 3-NN query after the sorted growth
  std::size_t max_depth = 0;
  std::size_t depth_limit = 0;
};

std::vector<AdversarialPoint> bench_kdtree_adversarial(bool quick) {
  // Sorted insertion is the kd-tree's worst case: every point descends the
  // same spine, so without the depth cap the tree degenerates to depth ~N/2
  // and BOTH adds and queries go O(N).  With the cap the add column stays
  // near the random-order cost (the occasional capped rebuild amortizes to
  // O(N) total) and the query column stays O(log N) — max_depth is printed
  // against the enforced limit as the proof.
  std::printf("\nKdTree::insert, adversarial sorted order (depth cap active)\n");
  std::printf("%12s %14s %14s %10s %8s\n", "index size", "ns/add",
              "query ns", "max depth", "limit");
  std::vector<AdversarialPoint> results;
  std::vector<std::size_t> sizes{1024, 8192, 65536};
  if (quick) sizes = {1024, 8192};
  for (const std::size_t n : sizes) {
    ml::KdTree tree;
    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(i);
      const std::array<double, 2> point{v, v};
      tree.insert(point);
    }
    const double ns_per_add =
        seconds_since(start) * 1e9 / static_cast<double>(n);

    Rng rng(n);
    const std::size_t queries = quick ? 256 : 2048;
    start = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (std::size_t q = 0; q < queries; ++q) {
      const std::array<double, 2> probe{rng.uniform(0, double(n)),
                                        rng.uniform(0, double(n))};
      sink += tree.nearest(probe, 3).front().squared_distance;
    }
    const double query_ns =
        seconds_since(start) * 1e9 / static_cast<double>(queries);
    if (sink < 0) std::printf("impossible\n");  // keep the loop observable

    AdversarialPoint p{n, ns_per_add, query_ns, tree.max_depth(),
                       ml::KdTree::depth_limit(n)};
    std::printf("%12zu %14.0f %14.0f %10zu %8zu\n", p.index_size, p.ns_per_add,
                p.query_ns, p.max_depth, p.depth_limit);
    results.push_back(p);
  }
  return results;
}

void write_json(const char* path, const std::vector<ScalingPoint>& scaling,
                const std::vector<NetPoint>& net_scaling,
                const std::vector<AddPoint>& adds,
                const std::vector<AdversarialPoint>& adversarial) {
  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    std::exit(1);
  }
  const HostInfo host = host_info();
  std::fprintf(out,
               "{\n    \"host\": {\"cores\": %zu, \"governor\": \"%s\"},\n",
               host.cores, host.governor.c_str());
  std::fprintf(out, "    \"engine_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(out,
                 "      {\"threads\": %zu, \"series_steps_per_sec\": %.0f}%s\n",
                 scaling[i].threads, scaling[i].rate,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"net_scaling\": [\n");
  for (std::size_t i = 0; i < net_scaling.size(); ++i) {
    const NetPoint& p = net_scaling[i];
    // On a single-core host the point is tagged so downstream dashboards
    // never mistake scheduling pressure for a scaling regression.
    std::fprintf(out,
                 "      {\"threads\": %zu, \"connections\": %zu, "
                 "\"series_steps_per_sec\": %.0f, \"reuseport\": %s, "
                 "\"loop_busy_min\": %.3f, \"loop_busy_max\": %.3f, "
                 "\"contended_locks\": %llu, \"lock_wait_seconds\": %.6f%s}%s\n",
                 p.threads, p.connections, p.rate,
                 p.reuseport ? "true" : "false", p.loop_busy_min,
                 p.loop_busy_max,
                 static_cast<unsigned long long>(p.contended_locks),
                 p.lock_wait_seconds,
                 host.cores == 1
                     ? ", \"warning\": \"single-core host: loops, engine "
                       "workers, and loadgen share one core\""
                     : "",
                 i + 1 < net_scaling.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"kdtree_add\": [\n");
  for (std::size_t i = 0; i < adds.size(); ++i) {
    std::fprintf(out,
                 "      {\"index_size\": %zu, \"ns_per_add\": %.0f, "
                 "\"rebuild_ns\": %.0f}%s\n",
                 adds[i].index_size, adds[i].ns_per_add, adds[i].rebuild_ns,
                 i + 1 < adds.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"kdtree_adversarial\": [\n");
  for (std::size_t i = 0; i < adversarial.size(); ++i) {
    std::fprintf(out,
                 "      {\"index_size\": %zu, \"ns_per_add\": %.0f, "
                 "\"query_ns\": %.0f, \"max_depth\": %zu, "
                 "\"depth_limit\": %zu}%s\n",
                 adversarial[i].index_size, adversarial[i].ns_per_add,
                 adversarial[i].query_ns, adversarial[i].max_depth,
                 adversarial[i].depth_limit,
                 i + 1 < adversarial.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n}\n");
  std::fclose(out);
  std::printf("\nserve metrics written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // --json PATH : also emit the measurements as a JSON fragment
  // --quick     : smaller workload (CI smoke)
  // --net       : also sweep the loopback epoll server (net_scaling)
  const char* json_path = nullptr;
  bool quick = false;
  bool net = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--net") {
      net = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--quick] [--net]\n",
                   argv[0]);
      return 1;
    }
  }
  std::printf("================================================================\n");
  std::printf("bench_serve_throughput — sharded serving layer + online kd-tree\n");
  std::printf("================================================================\n\n");
  const HostInfo host = host_info();
  std::printf("host: %zu cores, cpufreq governor %s\n\n", host.cores,
              host.governor.c_str());
  if (net && host.cores == 1) {
    std::fprintf(stderr,
                 "warning: --net on a single-core host — the server event "
                 "loops, engine workers, and the in-process loadgen all share "
                 "one core, so the net_scaling numbers measure scheduling "
                 "pressure, not scaling; treat them as smoke coverage only\n");
  }
  const auto scaling = bench_engine_scaling(quick);
  const auto net_scaling =
      net ? bench_net_scaling(quick) : std::vector<NetPoint>{};
  const auto adds = bench_kdtree_add(quick);
  const auto adversarial = bench_kdtree_adversarial(quick);
  if (json_path) {
    write_json(json_path, scaling, net_scaling, adds, adversarial);
  }
  return 0;
}
